package telemetry

import (
	"testing"

	"memoir/internal/collections"
)

// fakeColl is a controllable measurable: tests mutate ln directly to
// model a collection growing between recorded operations.
type fakeColl struct {
	ln   int
	impl collections.Impl
}

func (f *fakeColl) Len() int               { return f.ln }
func (f *fakeColl) Impl() collections.Impl { return f.impl }

// fakeEnum models a runtime enumeration's Len.
type fakeEnum struct{ ln int }

func (f *fakeEnum) Len() int { return f.ln }

func TestSiteKeyString(t *testing.T) {
	for _, tc := range []struct {
		key  SiteKey
		want string
	}{
		{SiteKey{Fn: "main", Alloc: 0}, "@main#0"},
		{SiteKey{Fn: "main", Alloc: 2, Depth: 1}, "@main#2/1"},
		{SiteKey{Fn: "(input Array)", Alloc: -1}, "(input Array)"},
	} {
		if got := tc.key.String(); got != tc.want {
			t.Errorf("%+v: got %q, want %q", tc.key, got, tc.want)
		}
	}
}

// TestNilRecorderSafe pins the engines' calling convention: every
// method is callable on a nil recorder (telemetry off) without
// panicking or allocating state.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	c := &fakeColl{impl: collections.ImplHashSet}
	r.TrackColl(c, SiteKey{Fn: "f"})
	r.TrackInner(c, c)
	r.TrackEnum(c, "ade0")
	r.CollOp(c, OpRead, 1)
	r.EnumOp(c, OpEnc, false)
	if p := r.IterCounter(c); p != nil {
		t.Errorf("nil recorder IterCounter = %p, want nil", p)
	}
	res := r.Result()
	if res == nil || len(res.Sites) != 0 || len(res.Enums) != 0 {
		t.Errorf("nil recorder Result = %+v, want empty", res)
	}
}

func TestCollOpAttribution(t *testing.T) {
	r := NewRecorder()
	sparse := &fakeColl{impl: collections.ImplHashSet}
	dense := &fakeColl{impl: collections.ImplBitSet}
	r.TrackColl(sparse, SiteKey{Fn: "main", Alloc: 0})
	r.TrackColl(dense, SiteKey{Fn: "main", Alloc: 1})
	r.CollOp(sparse, OpRead, 3)
	r.CollOp(dense, OpHas, 2)

	// An untracked collection (a benchmark input) lazily lands in a
	// per-implementation pseudo-site with Alloc = -1.
	input := &fakeColl{impl: collections.ImplArray}
	r.CollOp(input, OpRead, 5)

	res := r.Result()
	if len(res.Sites) != 3 {
		t.Fatalf("got %d sites, want 3", len(res.Sites))
	}
	// Result sorts by (Fn, Alloc, Depth): the "(input Array)"
	// pseudo-site precedes "main".
	in, s0, s1 := res.Sites[0], res.Sites[1], res.Sites[2]
	if in.Key.Alloc != -1 || in.Key.String() != "(input Array)" || in.Ops[OpRead] != 5 {
		t.Errorf("input pseudo-site wrong: %+v", in)
	}
	if s0.Sparse != 3 || s0.Dense != 0 || s0.Impl != "HashSet" {
		t.Errorf("sparse site: sparse=%d dense=%d impl=%s", s0.Sparse, s0.Dense, s0.Impl)
	}
	if s1.Sparse != 0 || s1.Dense != 2 || s1.Impl != "BitSet" {
		t.Errorf("dense site: sparse=%d dense=%d impl=%s", s1.Sparse, s1.Dense, s1.Impl)
	}
}

// TestOccupancySampling pins the engine-invariant sampling rule: an
// occupancy sample is taken exactly when the site's cumulative
// mutation count crosses a power of two.
func TestOccupancySampling(t *testing.T) {
	r := NewRecorder()
	c := &fakeColl{impl: collections.ImplHashSet}
	r.TrackColl(c, SiteKey{Fn: "f", Alloc: 0})
	for i := 0; i < 10; i++ {
		c.ln = i + 1
		r.CollOp(c, OpInsert, 1)
	}
	c.ln = 4 // shrink before Result: peak must stay at the max observed
	res := r.Result()
	ss := res.Sites[0]
	wantMuts := []uint64{1, 2, 4, 8}
	if len(ss.Samples) != len(wantMuts) {
		t.Fatalf("got %d samples %+v, want muts %v", len(ss.Samples), ss.Samples, wantMuts)
	}
	for i, s := range ss.Samples {
		if s.Muts != wantMuts[i] || s.Len != int(wantMuts[i]) {
			t.Errorf("sample %d = %+v, want muts=len=%d", i, s, wantMuts[i])
		}
	}
	if ss.PeakLen != 10 {
		t.Errorf("PeakLen = %d, want 10", ss.PeakLen)
	}
	if ss.Muts != 10 {
		t.Errorf("Muts = %d, want 10", ss.Muts)
	}
}

// TestResultFoldsFinalLength: a collection that only grew after its
// last sampled mutation is still reported at its true final size.
func TestResultFoldsFinalLength(t *testing.T) {
	r := NewRecorder()
	c := &fakeColl{impl: collections.ImplBitSet}
	r.TrackColl(c, SiteKey{Fn: "f", Alloc: 0})
	r.CollOp(c, OpInsert, 1)
	c.ln = 99
	if got := r.Result().Sites[0].PeakLen; got != 99 {
		t.Errorf("PeakLen = %d, want 99 (final length folded in)", got)
	}
}

func TestTrackInnerDepth(t *testing.T) {
	r := NewRecorder()
	outer := &fakeColl{impl: collections.ImplBitMap}
	inner := &fakeColl{impl: collections.ImplBitSet}
	inner2 := &fakeColl{impl: collections.ImplBitSet}
	r.TrackColl(outer, SiteKey{Fn: "main", Alloc: 3})
	r.TrackInner(inner, outer)
	r.TrackInner(inner2, inner)
	r.CollOp(inner, OpInsert, 1)
	r.CollOp(inner2, OpInsert, 1)

	res := r.Result()
	if len(res.Sites) != 3 {
		t.Fatalf("got %d sites, want 3", len(res.Sites))
	}
	if k := res.Sites[1].Key; k.String() != "@main#3/1" {
		t.Errorf("inner key = %s, want @main#3/1", k)
	}
	if k := res.Sites[2].Key; k.String() != "@main#3/2" {
		t.Errorf("inner-of-inner key = %s, want @main#3/2", k)
	}

	// An inner of an untracked outer stays untracked (it would only
	// surface via the lazy input bucket if operated on).
	r2 := NewRecorder()
	r2.TrackInner(inner, outer)
	if res := r2.Result(); len(res.Sites) != 0 {
		t.Errorf("inner of untracked outer created %d sites, want 0", len(res.Sites))
	}
}

func TestEnumOps(t *testing.T) {
	r := NewRecorder()
	e := &fakeEnum{}
	r.TrackEnum(e, "ade0")
	r.TrackEnum(e, "ade0") // duplicate registration is a no-op
	r.EnumOp(e, OpEnc, false)
	r.EnumOp(e, OpDec, false)
	e.ln = 1
	r.EnumOp(e, OpAdd, true)
	e.ln = 1
	r.EnumOp(e, OpAdd, false) // re-add of a present key: Add but not Added

	anon := &fakeEnum{ln: 7}
	r.EnumOp(anon, OpAdd, true) // never tracked: auto-registers as anonymous

	res := r.Result()
	if len(res.Enums) != 2 {
		t.Fatalf("got %d enums, want 2", len(res.Enums))
	}
	// Sorted by global name: "(enum 0)" < "ade0".
	a, n := res.Enums[0], res.Enums[1]
	if a.Global != "(enum 0)" || a.Add != 1 || a.FinalLen != 7 {
		t.Errorf("anonymous enum = %+v", a)
	}
	if n.Global != "ade0" || n.Enc != 1 || n.Dec != 1 || n.Add != 2 || n.Added != 1 || n.FinalLen != 1 {
		t.Errorf("named enum = %+v", n)
	}
	if got, want := n.Trans(), uint64(4); got != want {
		t.Errorf("Trans = %d, want %d", got, want)
	}
}

func TestIterCounter(t *testing.T) {
	r := NewRecorder()
	c := &fakeColl{impl: collections.ImplArray}
	r.TrackColl(c, SiteKey{Fn: "f", Alloc: 0})
	p := r.IterCounter(c)
	if p == nil {
		t.Fatal("IterCounter returned nil on a live recorder")
	}
	*p += 12
	if got := r.Result().Sites[0].Ops[OpIter]; got != 12 {
		t.Errorf("OpIter = %d, want 12", got)
	}
}
