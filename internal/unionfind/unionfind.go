// Package unionfind provides a disjoint-set forest with union by rank
// and path compression. It backs Algorithm 5's equivalence-class
// unification in the ADE pass and serves as a reference substrate for
// the MST and CC benchmarks.
package unionfind

// UF is a disjoint-set forest over integer elements [0, n).
type UF struct {
	parent []int
	rank   []uint8
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *UF {
	u := &UF{parent: make([]int, n), rank: make([]uint8, n), sets: n}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Grow extends the forest to cover at least n elements.
func (u *UF) Grow(n int) {
	for len(u.parent) < n {
		u.parent = append(u.parent, len(u.parent))
		u.rank = append(u.rank, 0)
		u.sets++
	}
}

// Len returns the number of elements.
func (u *UF) Len() int { return len(u.parent) }

// Sets returns the number of disjoint sets.
func (u *UF) Sets() int { return u.sets }

// Find returns the representative of x's set, compressing the path.
func (u *UF) Find(x int) int {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the sets of a and b, reporting whether they were
// previously disjoint.
func (u *UF) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UF) Same(a, b int) bool { return u.Find(a) == u.Find(b) }
