package unionfind

import (
	"math/rand"
	"testing"
)

func TestBasicUnions(t *testing.T) {
	u := New(10)
	if u.Sets() != 10 {
		t.Fatalf("Sets=%d", u.Sets())
	}
	if !u.Union(1, 2) || !u.Union(2, 3) {
		t.Fatal("fresh unions reported joined")
	}
	if u.Union(1, 3) {
		t.Fatal("redundant union reported disjoint")
	}
	if !u.Same(1, 3) || u.Same(1, 4) {
		t.Fatal("Same wrong")
	}
	if u.Sets() != 8 {
		t.Fatalf("Sets=%d, want 8", u.Sets())
	}
}

func TestGrow(t *testing.T) {
	u := New(2)
	u.Grow(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Fatalf("Len=%d Sets=%d", u.Len(), u.Sets())
	}
	u.Union(0, 4)
	if !u.Same(0, 4) {
		t.Fatal("union after grow failed")
	}
}

// Model test: union-find agrees with naive component labeling.
func TestAgainstNaiveModel(t *testing.T) {
	const n = 200
	r := rand.New(rand.NewSource(5))
	u := New(n)
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for i := 0; i < 500; i++ {
		a, b := r.Intn(n), r.Intn(n)
		u.Union(a, b)
		if label[a] != label[b] {
			relabel(label[a], label[b])
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < i+5 && j < n; j++ {
			if u.Same(i, j) != (label[i] == label[j]) {
				t.Fatalf("disagreement at (%d,%d)", i, j)
			}
		}
	}
	sets := map[int]bool{}
	for i := range label {
		sets[label[i]] = true
	}
	if u.Sets() != len(sets) {
		t.Fatalf("Sets=%d want %d", u.Sets(), len(sets))
	}
}
