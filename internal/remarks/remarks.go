// Package remarks implements LLVM-style optimization remarks and
// pipeline tracing for the ADE compiler: every sub-pass decision
// (enumerate, skip, share, RTE elision, interprocedural clone,
// implementation selection, pragma override) is emitted as a
// structured record with a stable code, the enclosing function, the
// `.mir` source line, and the decision's inputs; phase boundaries
// record per-sub-pass wall time and IR size deltas.
//
// Remarks export as human-readable text, JSON, and Chrome
// `trace_event` JSON (loadable in Perfetto or chrome://tracing) via
// `adec -remarks=<file> -trace=<file>`. Remarks that concern a
// collection allocation site carry a telemetry.SiteKey, which is the
// join key cmd/adereport uses to pair each compile-time decision with
// the runtime behaviour observed at that site.
package remarks

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"memoir/internal/telemetry"
)

// Remark codes. Each code is stable and golden-tested; tools may key
// on them.
const (
	// CodeEnumCreate: an enumeration class was created for a set of
	// allocation sites (carries the class's benefit score and global).
	CodeEnumCreate = "enum-create"
	// CodeEnumSkip: a site or class was considered and rejected
	// (escape, no benefit, union safety).
	CodeEnumSkip = "enum-skip"
	// CodeShareJoin: Algorithm 3's greedy sweep merged two facets
	// because the union's benefit beat the sum (carries both scores).
	CodeShareJoin = "share-join"
	// CodeShareReject: a same-domain merge was evaluated and declined.
	CodeShareReject = "share-reject"
	// CodeRTEElide: redundant translation elimination removed a
	// translation pair (carries the rule name and operands).
	CodeRTEElide = "rte-elide"
	// CodeInterproc: interprocedural unification cloned a callee or
	// unified a class across functions.
	CodeInterproc = "interproc"
	// CodeSelectImpl: the selection verdict for an enumerated site.
	CodeSelectImpl = "select-impl"
	// CodePragma: a `#pragma ade` directive overrode the heuristics.
	CodePragma = "pragma"
	// CodeDegrade: a sandboxed sub-pass panicked or failed an
	// invariant check; the pipeline rolled the program back to its
	// untransformed state and continued (carries the failing pass and
	// reason).
	CodeDegrade = "degrade"
	// CodeStaticEnum: interval analysis proved every key of a site lies
	// in a small dense range, so the dense implementation was selected
	// statically — no enumeration table, no enc/dec at runtime (carries
	// the proved range and the chosen implementation).
	CodeStaticEnum = "static-enum"
	// CodeProfileWeighted: an adeprofile/v1 profile matched the program
	// and is steering the benefit weights and implementation selection
	// (carries the profile's run count and matched-site count).
	CodeProfileWeighted = "profile-weighted"
	// CodeProfileStale: a supplied profile did not match the program
	// (wrong hash or unmappable site keys); the pass warned and fell
	// back to the static heuristics, leaving decisions unchanged.
	CodeProfileStale = "profile-stale"
)

// Arg is one named decision input (benefit scores, rule operands,
// chosen implementation, ...). Args keep their emission order.
type Arg struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Remark is one structured compiler decision.
type Remark struct {
	Code string `json:"code"`
	// Pass is the sub-pass that made the decision.
	Pass string `json:"pass"`
	// Fn is the enclosing function's name, without '@'.
	Fn string `json:"fn,omitempty"`
	// Site names the subject value or class (e.g. "%h" or "ade0").
	Site string `json:"site,omitempty"`
	// Line is the 1-based `.mir` source line, 0 when unknown.
	Line int   `json:"line,omitempty"`
	Args []Arg `json:"args,omitempty"`
	// Message is the human-readable sentence.
	Message string `json:"message"`
	// Key, when set, is the allocation-site join key shared with
	// runtime telemetry.
	Key *telemetry.SiteKey `json:"siteKey,omitempty"`

	// at orders the remark on the trace timeline. It is deliberately
	// unexported and excluded from text/JSON output so golden files
	// stay byte-stable.
	at time.Time
}

// Phase is one timed sub-pass: wall time plus the IR size (instruction
// count) entering and leaving it.
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"durationNs"`
	IRBefore int           `json:"irBefore"`
	IRAfter  int           `json:"irAfter"`

	start time.Time
}

// Emitter collects remarks and phase timings during one compiler run.
// All methods are safe on a nil receiver, so the pass code can emit
// unconditionally; a nil emitter makes every call a no-op.
type Emitter struct {
	Remarks []Remark
	Phases  []Phase

	origin time.Time
	open   int // index of the open phase, -1 if none
}

// NewEmitter returns an empty emitter.
func NewEmitter() *Emitter {
	return &Emitter{origin: time.Now(), open: -1}
}

// Begin opens a timed phase. irSize is the program's instruction count
// entering the phase. Phases do not nest; Begin closes any open phase.
func (e *Emitter) Begin(name string, irSize int) {
	if e == nil {
		return
	}
	e.End(irSize)
	e.Phases = append(e.Phases, Phase{Name: name, IRBefore: irSize, start: time.Now()})
	e.open = len(e.Phases) - 1
}

// End closes the open phase, recording its duration and the program's
// instruction count leaving it. No-op when no phase is open.
func (e *Emitter) End(irSize int) {
	if e == nil || e.open < 0 {
		return
	}
	p := &e.Phases[e.open]
	p.Duration = time.Since(p.start)
	p.IRAfter = irSize
	e.open = -1
}

// Emit records one remark, filling Pass from the open phase when the
// remark leaves it empty.
func (e *Emitter) Emit(r Remark) {
	if e == nil {
		return
	}
	if r.Pass == "" && e.open >= 0 {
		r.Pass = e.Phases[e.open].Name
	}
	r.at = time.Now()
	e.Remarks = append(e.Remarks, r)
}

// Enabled reports whether remarks are being collected.
func (e *Emitter) Enabled() bool { return e != nil }

// line renders one remark in the stable text form
//
//	pass: CODE @fn:line site: message [k=v ...]
func line(r Remark) string {
	var b strings.Builder
	b.WriteString(r.Pass)
	b.WriteString(": ")
	b.WriteString(r.Code)
	if r.Fn != "" {
		fmt.Fprintf(&b, " @%s", r.Fn)
		if r.Line > 0 {
			fmt.Fprintf(&b, ":%d", r.Line)
		}
	}
	if r.Site != "" {
		fmt.Fprintf(&b, " %s", r.Site)
	}
	b.WriteString(": ")
	b.WriteString(r.Message)
	for _, a := range r.Args {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
	}
	return b.String()
}

// Text renders remarks alone (no phase timings) as stable,
// golden-testable text, one remark per line.
func Text(rs []Remark) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(line(r))
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteText writes the full human-readable report: remarks followed by
// the phase table (timings are inherently unstable, so golden tests
// use Text instead).
func (e *Emitter) WriteText(w io.Writer) error {
	if e == nil {
		return nil
	}
	if _, err := io.WriteString(w, Text(e.Remarks)); err != nil {
		return err
	}
	for _, p := range e.Phases {
		delta := p.IRAfter - p.IRBefore
		if _, err := fmt.Fprintf(w, "phase %-28s %10v  ir %d -> %d (%+d)\n",
			p.Name, p.Duration.Round(time.Microsecond), p.IRBefore, p.IRAfter, delta); err != nil {
			return err
		}
	}
	return nil
}

// jsonDoc is the `adec -remarks=x.json` schema.
type jsonDoc struct {
	Schema  string   `json:"schema"`
	Remarks []Remark `json:"remarks"`
	Phases  []Phase  `json:"phases,omitempty"`
}

// Schema identifies the remarks JSON document format.
const Schema = "ade-remarks/v1"

// WriteJSON writes remarks and phases as indented JSON.
func (e *Emitter) WriteJSON(w io.Writer) error {
	doc := jsonDoc{Schema: Schema}
	if e != nil {
		doc.Remarks = e.Remarks
		doc.Phases = e.Phases
	}
	if doc.Remarks == nil {
		doc.Remarks = []Remark{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// RemarksJSON renders remarks alone as stable, golden-testable
// indented JSON (no phases: their durations vary run to run).
func RemarksJSON(rs []Remark) ([]byte, error) {
	doc := jsonDoc{Schema: Schema, Remarks: rs}
	if doc.Remarks == nil {
		doc.Remarks = []Remark{}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// traceEvent is one Chrome trace_event record (the JSON Array Format
// understood by Perfetto and chrome://tracing).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace writes the run as Chrome trace_event JSON: each phase is
// a complete ("X") event on the pipeline track and each remark an
// instant ("i") event at its emission time.
func (e *Emitter) WriteTrace(w io.Writer) error {
	var evs []traceEvent
	if e != nil {
		for _, p := range e.Phases {
			evs = append(evs, traceEvent{
				Name: p.Name, Cat: "pass", Ph: "X",
				TS:  p.start.Sub(e.origin).Microseconds(),
				Dur: p.Duration.Microseconds(),
				PID: 1, TID: 1,
				Args: map[string]any{"irBefore": p.IRBefore, "irAfter": p.IRAfter},
			})
		}
		for _, r := range e.Remarks {
			args := map[string]any{"message": r.Message}
			if r.Fn != "" {
				args["fn"] = r.Fn
			}
			if r.Line > 0 {
				args["line"] = r.Line
			}
			for _, a := range r.Args {
				args[a.Key] = a.Val
			}
			evs = append(evs, traceEvent{
				Name: r.Code + " " + r.Site, Cat: "remark", Ph: "i",
				TS:  r.at.Sub(e.origin).Microseconds(),
				PID: 1, TID: 2, S: "t",
				Args: args,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	if evs == nil {
		evs = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// ByCode returns the remarks carrying the given code.
func ByCode(rs []Remark, code string) []Remark {
	var out []Remark
	for _, r := range rs {
		if r.Code == code {
			out = append(out, r)
		}
	}
	return out
}

// ArgVal returns the value of the named arg, or "".
func (r *Remark) ArgVal(key string) string {
	for _, a := range r.Args {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}
