package server

import (
	"errors"
	"net/http"

	"memoir/internal/interp"
)

// Stable machine-readable error codes. These are a wire format:
// append-only, never renamed. Clients branch on Code; the HTTP status
// is the coarse transport-level mirror.
const (
	// Request-shape problems (the untrusted decode surface).
	CodeBadRequest   = "bad-request"    // 400: malformed JSON, bad field values
	CodeBodyTooLarge = "body-too-large" // 413: request body over the configured cap
	CodeParseError   = "parse-error"    // 400: .mir text rejected by the parser
	CodeVerifyError  = "verify-error"   // 400: program failed IR verification
	CodeUnknownEntry = "unknown-entry"  // 400: entry function not in the program

	// Compile-time failures.
	CodeADEError = "ade-error" // 422: ADE pipeline failed (un-sandboxed pass panic / injected fault)

	// Budget interruptions — the interp/errors.go taxonomy, one code
	// per sentinel so interrupted runs are machine-distinguishable.
	CodeStepBudget   = "step-budget"   // 429: interp.ErrStepBudget
	CodeMemBudget    = "mem-budget"    // 429: interp.ErrMemBudget
	CodeDeadline     = "deadline"      // 408: interp.ErrDeadline
	CodeRuntimePanic = "runtime-panic" // 422: interp.ErrRuntimePanic (engine-contained panic, incl. injected faults)

	// Other guest-program runtime failures (div-zero, bad call, ...).
	CodeRuntimeError = "runtime-error" // 422

	// Server-side conditions.
	CodeOverloaded = "overloaded"     // 503: worker pool queue full
	CodeShutdown   = "shutting-down"  // 503: daemon draining
	CodeInternal   = "internal-error" // 500: server bug (post-ADE verify/compile failure)
	CodePanic      = "internal-panic" // 500: worker recovered a server-side panic

	// Self-protection: the program hash is circuit-broken after
	// repeated panics or budget blowouts. The response carries
	// retryAfterMs (and a Retry-After header) naming when the next
	// half-open probe becomes possible.
	CodeQuarantined = "quarantined" // 422
)

// APIError is the structured error body every non-2xx response
// carries (inside Response.Error).
type APIError struct {
	Code    string `json:"code"`
	Status  int    `json:"httpStatus"`
	Message string `json:"message"`
	// Fn and Steps localize budget interruptions: the function
	// executing at the interruption and the global step count reached
	// (from interp.LimitError). Bytes is the live footprint for
	// mem-budget stops.
	Fn    string `json:"fn,omitempty"`
	Steps uint64 `json:"steps,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	// RetryAfterMs accompanies `quarantined` rejections: the interval
	// until the breaker's next half-open probe.
	RetryAfterMs int64 `json:"retryAfterMs,omitempty"`
}

func (e *APIError) Error() string { return e.Code + ": " + e.Message }

func apiErr(code string, status int, msg string) *APIError {
	return &APIError{Code: code, Status: status, Message: msg}
}

// MapRunError classifies an execution error from either engine into
// the stable code + HTTP status. The mapping is total: anything not
// recognized as a budget interruption or engine-contained panic is a
// guest runtime error.
//
//	ErrStepBudget   → 429 step-budget   (compute quota exhausted; retryable with a bigger budget)
//	ErrMemBudget    → 429 mem-budget    (memory quota exhausted)
//	ErrDeadline     → 408 deadline      (wall-clock deadline expired)
//	ErrRuntimePanic → 422 runtime-panic (program crashed the engine; contained)
//	anything else   → 422 runtime-error
//
// Both engines return the same *interp.LimitError values from the
// same dynamic points (PR 5), so the mapping is engine-agnostic by
// construction; the server tests pin that on both engines.
func MapRunError(err error) *APIError {
	var le *interp.LimitError
	if errors.As(err, &le) {
		out := &APIError{Message: err.Error(), Fn: le.Fn, Steps: le.Steps}
		switch {
		case errors.Is(err, interp.ErrStepBudget):
			out.Code, out.Status = CodeStepBudget, http.StatusTooManyRequests
		case errors.Is(err, interp.ErrMemBudget):
			out.Code, out.Status = CodeMemBudget, http.StatusTooManyRequests
			out.Bytes = le.Bytes
		case errors.Is(err, interp.ErrDeadline):
			out.Code, out.Status = CodeDeadline, http.StatusRequestTimeout
		case errors.Is(err, interp.ErrRuntimePanic):
			out.Code, out.Status = CodeRuntimePanic, http.StatusUnprocessableEntity
		default:
			out.Code, out.Status = CodeRuntimeError, http.StatusUnprocessableEntity
		}
		return out
	}
	return apiErr(CodeRuntimeError, http.StatusUnprocessableEntity, err.Error())
}
