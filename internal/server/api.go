package server

import (
	"encoding/json"

	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"memoir/internal/bench"
	"memoir/internal/collections"
	"memoir/internal/core"
	"memoir/internal/faults"
)

// Request is the wire format of POST /v1/compile and /v1/run. The
// decoder is an untrusted surface: every field is capped and
// validated before any of it reaches the compiler, and the whole body
// is size-limited by Config.MaxBodyBytes before JSON decoding starts.
type Request struct {
	// Program is the .mir source text.
	Program string `json:"program"`
	// Engine selects the execution engine: "interp" (default) or
	// "vm". Ignored by /v1/compile.
	Engine string `json:"engine,omitempty"`
	// Entry is the function to run (default "main").
	Entry string `json:"entry,omitempty"`
	// Args are u64 scalar arguments for the entry function.
	Args []uint64 `json:"args,omitempty"`
	// ADE applies the full pipeline before execution; defaults to
	// true (nil).
	ADE *bool `json:"ade,omitempty"`
	// Options ablates/retargets the ADE pipeline (all optional).
	Options *ADEOptions `json:"options,omitempty"`

	// Per-request QoS budgets. Zero means "server default"; values
	// above the server ceiling are clamped down to it.
	MaxSteps    uint64 `json:"maxSteps,omitempty"`
	MaxMemBytes int64  `json:"maxMemBytes,omitempty"`
	TimeoutMs   int64  `json:"timeoutMs,omitempty"`

	// Fault opts this request into deterministic fault injection (a
	// PR-5 registry point name, e.g. "alloc-fail:1"). Faulted
	// requests bypass the cache: injectors are single-run state.
	Fault string `json:"fault,omitempty"`
	// Telemetry requests per-site runtime telemetry in the response.
	Telemetry bool `json:"telemetry,omitempty"`
	// NoCache bypasses the compiled-artifact cache (for measurement).
	NoCache bool `json:"noCache,omitempty"`
}

// ADEOptions is the request-settable subset of core.Options.
type ADEOptions struct {
	RTE         *bool  `json:"rte,omitempty"`
	Propagation *bool  `json:"propagation,omitempty"`
	Sharing     *bool  `json:"sharing,omitempty"`
	SetImpl     string `json:"setImpl,omitempty"`
	MapImpl     string `json:"mapImpl,omitempty"`
	ForceAll    bool   `json:"forceAll,omitempty"`
}

// Response is the wire format of /v1/compile and /v1/run replies.
type Response struct {
	ID string `json:"id"`
	OK bool   `json:"ok"`
	// Error is set on failures, with the stable code taxonomy.
	Error *APIError `json:"error,omitempty"`

	// Cache describes how the artifact was obtained.
	Cache *CacheInfo `json:"cache,omitempty"`
	// Phases records which pipeline phases actually ran for this
	// request; a hot-cache run shows all false.
	Phases *PhaseInfo `json:"phases,omitempty"`

	// Compile-side results.
	Degraded []string `json:"degraded,omitempty"` // sandboxed sub-passes rolled back
	Classes  int      `json:"classes,omitempty"`  // enumeration classes formed

	// Run-side results (absent for /v1/compile).
	Engine string     `json:"engine,omitempty"`
	Result string     `json:"result,omitempty"`
	Output *OutputSum `json:"output,omitempty"`
	Stats  *RunStats  `json:"stats,omitempty"`
	// Partial marks budget-interrupted runs whose Stats are the
	// engine-identical partial tallies up to the interruption.
	Partial bool    `json:"partial,omitempty"`
	WallMs  float64 `json:"wallMs,omitempty"`
	// Telemetry is the per-site summary when requested.
	Telemetry json.RawMessage `json:"telemetry,omitempty"`
}

// CacheInfo reports the cache interaction of one request.
type CacheInfo struct {
	Hit bool   `json:"hit"`
	Key string `json:"key"` // "<program-hash>|<options-fingerprint>"
	// Disk marks hits satisfied from the durable artifact store: the
	// in-memory cache missed, but the artifact was re-materialized
	// from disk without re-running ADE.
	Disk bool `json:"disk,omitempty"`
}

// PhaseInfo reports which phases ran (the per-request view of the
// server's cumulative phase counters exposed by /v1/stats).
type PhaseInfo struct {
	Parsed   bool `json:"parsed"`
	ADE      bool `json:"ade"`
	Compiled bool `json:"compiled"`
}

// OutputSum is the order-insensitive emitted-output summary.
type OutputSum struct {
	Count    uint64 `json:"count"`
	Checksum uint64 `json:"checksum"`
}

// RunStats is the JSON projection of interp.Stats.
type RunStats struct {
	Steps     uint64 `json:"steps"`
	Sparse    uint64 `json:"sparse"`
	Dense     uint64 `json:"dense"`
	PeakBytes int64  `json:"peakBytes"`
}

// Decode limits. Program size is capped separately (and lower) than
// the raw body so a JSON request can't smuggle a huge program inside
// a body that squeaks under the transport cap.
const (
	maxArgs      = 64
	maxEntryLen  = 128
	maxFaultLen  = 64
	maxEngineLen = 16
)

// DecodeRequest parses and validates a request body. contentType
// routes between the JSON format and the raw-.mir convenience format
// (any text/* or application/x-mir body is the program itself, with
// options taken from query parameters). The returned *APIError is
// ready to serialize.
func DecodeRequest(body []byte, contentType string, query map[string][]string, maxProgram int) (*Request, *APIError) {
	mt := contentType
	if mt != "" {
		if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
			mt = parsed
		}
	}
	var req *Request
	if strings.HasPrefix(mt, "text/") || mt == "application/x-mir" {
		r, aerr := requestFromQuery(string(body), query)
		if aerr != nil {
			return nil, aerr
		}
		req = r
	} else {
		req = &Request{}
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			return nil, apiErr(CodeBadRequest, http.StatusBadRequest, "invalid JSON: "+err.Error())
		}
		// Trailing garbage after the JSON document is rejected too.
		if err := dec.Decode(&struct{}{}); err != io.EOF {
			return nil, apiErr(CodeBadRequest, http.StatusBadRequest, "trailing data after JSON body")
		}
	}
	if aerr := validateRequest(req, maxProgram); aerr != nil {
		return nil, aerr
	}
	return req, nil
}

// requestFromQuery builds a Request for a raw .mir body from URL
// query parameters (engine, entry, args, ade, max-steps, max-mem,
// timeout-ms, fault, telemetry, no-cache).
func requestFromQuery(program string, query map[string][]string) (*Request, *APIError) {
	get := func(k string) string {
		if vs := query[k]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	req := &Request{Program: program, Engine: get("engine"), Entry: get("entry"), Fault: get("fault")}
	if v := get("ade"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return nil, apiErr(CodeBadRequest, http.StatusBadRequest, "bad ade parameter: "+v)
		}
		req.ADE = &b
	}
	if v := get("args"); v != "" {
		for _, a := range strings.Split(v, ",") {
			x, err := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
			if err != nil {
				return nil, apiErr(CodeBadRequest, http.StatusBadRequest, "bad args parameter: "+a)
			}
			req.Args = append(req.Args, x)
		}
	}
	for k, dst := range map[string]*uint64{"max-steps": &req.MaxSteps} {
		if v := get(k); v != "" {
			x, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, apiErr(CodeBadRequest, http.StatusBadRequest, "bad "+k+" parameter: "+v)
			}
			*dst = x
		}
	}
	for k, dst := range map[string]*int64{"max-mem": &req.MaxMemBytes, "timeout-ms": &req.TimeoutMs} {
		if v := get(k); v != "" {
			x, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, apiErr(CodeBadRequest, http.StatusBadRequest, "bad "+k+" parameter: "+v)
			}
			*dst = x
		}
	}
	if v := get("telemetry"); v != "" {
		req.Telemetry, _ = strconv.ParseBool(v)
	}
	if v := get("no-cache"); v != "" {
		req.NoCache, _ = strconv.ParseBool(v)
	}
	return req, nil
}

func validateRequest(req *Request, maxProgram int) *APIError {
	if req.Program == "" {
		return apiErr(CodeBadRequest, http.StatusBadRequest, "empty program")
	}
	if maxProgram > 0 && len(req.Program) > maxProgram {
		return apiErr(CodeBodyTooLarge, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("program is %d bytes; cap is %d", len(req.Program), maxProgram))
	}
	if len(req.Engine) > maxEngineLen {
		return apiErr(CodeBadRequest, http.StatusBadRequest, "engine name too long")
	}
	if _, err := bench.ParseEngine(req.Engine); err != nil {
		return apiErr(CodeBadRequest, http.StatusBadRequest, err.Error())
	}
	if req.Entry == "" {
		req.Entry = "main"
	}
	if len(req.Entry) > maxEntryLen {
		return apiErr(CodeBadRequest, http.StatusBadRequest, "entry name too long")
	}
	if len(req.Args) > maxArgs {
		return apiErr(CodeBadRequest, http.StatusBadRequest,
			fmt.Sprintf("too many args: %d (cap %d)", len(req.Args), maxArgs))
	}
	if len(req.Fault) > maxFaultLen {
		return apiErr(CodeBadRequest, http.StatusBadRequest, "fault name too long")
	}
	if req.Fault != "" {
		if _, err := faults.ByName(req.Fault); err != nil {
			return apiErr(CodeBadRequest, http.StatusBadRequest, err.Error())
		}
	}
	if req.MaxMemBytes < 0 || req.TimeoutMs < 0 {
		return apiErr(CodeBadRequest, http.StatusBadRequest, "negative budget")
	}
	if req.Options != nil {
		for _, sel := range []string{req.Options.SetImpl, req.Options.MapImpl} {
			if sel == "" {
				continue
			}
			if _, ok := collections.ParseImpl(sel); !ok {
				return apiErr(CodeBadRequest, http.StatusBadRequest, "unknown collection impl "+strconv.Quote(sel))
			}
		}
	}
	return nil
}

// wantADE reports whether the request asked for the ADE pipeline
// (the default).
func (r *Request) wantADE() bool { return r.ADE == nil || *r.ADE }

// coreOptions materializes the effective core.Options for a request.
// sandbox is the server-wide production posture (Config.Sandbox).
func (r *Request) coreOptions(sandbox bool) core.Options {
	o := core.DefaultOptions()
	o.Sandbox = sandbox
	if r.Options == nil {
		return o
	}
	if r.Options.RTE != nil {
		o.RTE = *r.Options.RTE
	}
	if r.Options.Propagation != nil {
		o.Propagation = *r.Options.Propagation
	}
	if r.Options.Sharing != nil {
		o.Sharing = *r.Options.Sharing
		if !o.Sharing {
			o.Propagation = false
		}
	}
	if r.Options.SetImpl != "" {
		if impl, ok := collections.ParseImpl(r.Options.SetImpl); ok {
			o.SetImpl = impl
		}
	}
	if r.Options.MapImpl != "" {
		if impl, ok := collections.ParseImpl(r.Options.MapImpl); ok {
			o.MapImpl = impl
		}
	}
	o.ForceAll = r.Options.ForceAll
	return o
}

// fingerprint is the options half of the cache key: the core
// fingerprint when ADE is on, a distinct marker when off.
func (r *Request) fingerprint(sandbox bool) string {
	if !r.wantADE() {
		return "ade=off"
	}
	return r.coreOptions(sandbox).Fingerprint()
}

// budgets resolves the effective per-request QoS budgets: the request
// value when given (clamped to the server ceiling), else the server
// default.
func (r *Request) budgets(cfg Config) (steps uint64, mem int64, timeout time.Duration) {
	steps = cfg.DefaultMaxSteps
	if r.MaxSteps > 0 {
		steps = r.MaxSteps
	}
	if cfg.CeilMaxSteps > 0 && (steps == 0 || steps > cfg.CeilMaxSteps) {
		steps = cfg.CeilMaxSteps
	}
	mem = cfg.DefaultMaxMem
	if r.MaxMemBytes > 0 {
		mem = r.MaxMemBytes
	}
	if cfg.CeilMaxMem > 0 && (mem == 0 || mem > cfg.CeilMaxMem) {
		mem = cfg.CeilMaxMem
	}
	timeout = cfg.DefaultTimeout
	if r.TimeoutMs > 0 {
		timeout = time.Duration(r.TimeoutMs) * time.Millisecond
	}
	if cfg.CeilTimeout > 0 && (timeout == 0 || timeout > cfg.CeilTimeout) {
		timeout = cfg.CeilTimeout
	}
	return steps, mem, timeout
}
