package server

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fuzzServer builds a server with tiny budgets so adversarial
// programs fail fast: the fuzzer explores the decoder and pipeline,
// not the interpreter's patience.
func fuzzServer() *Server {
	cfg := DefaultConfig()
	cfg.CacheEntries = 32
	cfg.CacheBytes = 1 << 20
	cfg.MaxProgramBytes = 4096
	cfg.DefaultMaxSteps = 20_000
	cfg.CeilMaxSteps = 20_000
	cfg.DefaultMaxMem = 1 << 20
	cfg.CeilMaxMem = 1 << 20
	cfg.DefaultTimeout = 250 * time.Millisecond
	cfg.CeilTimeout = 250 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// serveOne drives the decode → process path for one arbitrary body,
// deliberately NOT through the worker pool: the pool's recover would
// mask panics, and surfacing them is the point of the fuzzer.
// Whatever comes back must be a structured response with a sane
// status.
func serveOne(t *testing.T, s *Server, body []byte, contentType string, run bool) {
	t.Helper()
	req, aerr := DecodeRequest(body, contentType, map[string][]string{}, s.cfg.MaxProgramBytes)
	if aerr != nil {
		if aerr.Status < 400 || aerr.Status > 599 || aerr.Code == "" {
			t.Fatalf("decode error without a sane status/code: %+v", aerr)
		}
		return
	}
	resp := s.process(req, run, "fuzz")
	if resp == nil {
		t.Fatal("process returned nil response")
	}
	if resp.Error != nil {
		if resp.Error.Status < 400 || resp.Error.Status > 599 || resp.Error.Code == "" {
			t.Fatalf("error response without a sane status/code: %+v", resp.Error)
		}
		if resp.Error.Status == http.StatusInternalServerError {
			t.Fatalf("5xx from arbitrary client input: %+v", resp.Error)
		}
	}
}

// FuzzServeRequest fuzzes the untrusted request surface end to end:
// JSON and raw-.mir bodies through DecodeRequest and, when they
// decode, through the full compile/execute pipeline. The invariants:
// no panics anywhere (parser, verifier, ADE, bytecode compiler,
// either engine), and every failure is a structured 4xx — arbitrary
// client bytes must never produce a 500.
func FuzzServeRequest(f *testing.F) {
	valid := `fn u64 @main(): exported
  %s := new Set<u64>()
  do:
    %i := phi(0, %i1)
    %s0 := phi(%s, %s1)
    %s1 := insert(%s0, %i)
    %i1 := add(%i, 1)
    %more := lt(%i1, 50)
  while %more
  %sF := phi(%s0)
  %n := size(%sF)
  emit(%n)
  ret %n
`
	f.Add([]byte(`{"program":"fn u64 @main(): exported\n  ret 0\n"}`), true, true)
	f.Add([]byte(`{"program":`+jsonQuote(valid)+`,"engine":"vm","telemetry":true}`), true, true)
	f.Add([]byte(`{"program":`+jsonQuote(valid)+`,"engine":"interp","maxSteps":100}`), true, true)
	f.Add([]byte(`{"program":"x","options":{"setImpl":"bitset","sharing":false}}`), true, false)
	f.Add([]byte(`{"program":"x","fault":"alloc-fail:1"}`), true, true)
	f.Add([]byte(`{"program":"x","unknown":1}`), true, true)
	f.Add([]byte(`{"program":"x"} trailing`), true, true)
	f.Add([]byte(`{"program":"x","args":[1,2,3],"entry":"f"}`), true, true)
	f.Add([]byte(`{"program":"x","maxMemBytes":-1}`), true, true)
	f.Add([]byte(`not json at all`), true, true)
	f.Add([]byte(valid), false, true)
	f.Add([]byte("fn u64 @main(): exported\n  %z := sub(1, 1)\n  %d := div(1, %z)\n  ret %d\n"), false, true)
	f.Add([]byte("fn u64 @main(: exported"), false, true)
	f.Add([]byte("\x00\xff\xfe"), false, false)
	f.Add([]byte(""), false, true)

	s := fuzzServer()
	f.Fuzz(func(t *testing.T, body []byte, isJSON, run bool) {
		ct := "text/x-mir"
		if isJSON {
			ct = "application/json"
		}
		serveOne(t, s, body, ct, run)
	})
}

// TestServeCrasherCorpus replays checked-in regression inputs for the
// serving surface (testdata/crashers/serve at the repo root). Files
// ending in .json are JSON request bodies; .mir files are raw-body
// requests. Each was once a live finding or a hardening edge; the
// replay asserts structured handling, no panics.
func TestServeCrasherCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "crashers", "serve")
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no serve crasher corpus at %s: %v", dir, err)
	}
	s := fuzzServer()
	for _, e := range entries {
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			body, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			ct := "text/x-mir"
			if strings.HasSuffix(name, ".json") {
				ct = "application/json"
			}
			serveOne(t, s, body, ct, true)
		})
	}
}

// jsonQuote is a minimal JSON string quoter for seed construction.
func jsonQuote(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\t", `\t`)
	return `"` + r.Replace(s) + `"`
}
