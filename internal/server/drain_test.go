package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// Drain under load: with every worker busy and the queue non-empty,
// Shutdown must let all accepted requests finish with real structured
// answers, reject anything after the drain with the stable
// shutting-down code, return within the drain deadline, and flush the
// final profile snapshot to the durable store.
func TestDrainUnderLoadCompletesInFlight(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.Workers = 2
		c.Backlog = 64
		c.StoreDir = dir
		c.PersistProfile = true
		c.ProfileSnapshotEvery = -1 // the drain snapshot is the one under test
		c.ProfileSample = 1
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	// One successful run so the live profile has something to flush.
	okBody, _ := json.Marshal(Request{Program: histProg})
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(okBody))
	if err != nil {
		t.Fatalf("prime: %v", err)
	}
	resp.Body.Close()

	// Saturate both workers and stack the backlog with slow requests.
	// Each is bounded twice over — a step budget and a short deadline —
	// so the whole drain stays well inside the test's own deadline even
	// under the race detector's slowdown.
	slowBody, _ := json.Marshal(Request{Program: spinProg, MaxSteps: 20_000_000, TimeoutMs: 500})
	const inflight = 6
	statuses := make([]int, inflight)
	errs := make([]error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(slowBody))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let them reach the pool

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if took := time.Since(start); took > 15*time.Second {
		t.Fatalf("drain blew the deadline: %v", took)
	}
	wg.Wait()
	for i := 0; i < inflight; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d dropped during drain: %v", i, errs[i])
		}
		// Each accepted request completed with a real structured
		// answer: the spin program exhausts its step budget (429) or
		// its deadline under -race (408) — never a connection reset,
		// and never a shed 503 for an already-accepted request.
		if statuses[i] != http.StatusTooManyRequests && statuses[i] != http.StatusRequestTimeout {
			t.Fatalf("request %d finished with status %d", i, statuses[i])
		}
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("serve: %v", err)
	}

	// After the drain, work submitted to the (closed) pool is refused
	// with the stable shutdown code.
	late, status := postJSON(t, s.Handler(), "/v1/run", Request{Program: histProg})
	if status != http.StatusServiceUnavailable || late.Error == nil || late.Error.Code != CodeShutdown {
		t.Fatalf("post-drain request: %d %+v", status, late.Error)
	}

	// The drain flushed the profile snapshot.
	if _, err := os.Stat(filepath.Join(dir, "profile", "fleet.profile")); err != nil {
		t.Fatalf("drain did not flush the profile snapshot: %v", err)
	}
}
