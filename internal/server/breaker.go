package server

import (
	"sync"
	"time"
)

// breaker is the per-program-hash circuit breaker: a program whose
// executions repeatedly panic or blow their budgets gets quarantined,
// so one hostile program cannot monopolize the worker pool with
// doomed runs. While quarantined, /v1/run requests for that hash are
// rejected fast with the stable `quarantined` error code and a
// retry-after hint; /v1/compile stays available (the breaker guards
// execution behavior, not compilation).
//
// State machine per hash (classic closed → open → half-open):
//
//	closed:    failures tallied; `threshold` consecutive bad
//	           executions trip the breaker.
//	open:      fast-reject until the backoff interval elapses. The
//	           interval starts at `backoff` and doubles on every
//	           re-trip, capped at `maxBackoff` — a program that keeps
//	           failing its probes is retried ever more rarely.
//	half-open: exactly one probe request is let through; its outcome
//	           decides. Success closes the breaker and forgets the
//	           hash entirely; failure re-opens with a doubled
//	           interval. Concurrent requests during the probe are
//	           rejected.
//
// Deliberately-faulted requests (req.Fault != "") never count: fault
// injection is an opt-in test surface, not program behavior.
type breaker struct {
	threshold  int
	backoff    time.Duration
	maxBackoff time.Duration
	now        func() time.Time // injectable for tests

	mu sync.Mutex
	m  map[string]*breakerState

	trips      uint64 // closed→open transitions (incl. re-trips)
	rejects    uint64 // fast-rejected requests
	probes     uint64 // half-open probes admitted
	recoveries uint64 // probes that closed the breaker
}

type breakerState struct {
	fails     int // consecutive bad executions while closed
	trips     int // consecutive open periods (backoff exponent)
	openUntil time.Time
	probing   bool
}

// newBreaker returns a breaker, or nil when threshold < 0 (disabled).
func newBreaker(threshold int, backoff, maxBackoff time.Duration) *breaker {
	if threshold < 0 {
		return nil
	}
	if threshold == 0 {
		threshold = 3
	}
	if backoff <= 0 {
		backoff = time.Second
	}
	if maxBackoff < backoff {
		maxBackoff = 60 * time.Second
		if maxBackoff < backoff {
			maxBackoff = backoff
		}
	}
	return &breaker{
		threshold:  threshold,
		backoff:    backoff,
		maxBackoff: maxBackoff,
		now:        time.Now,
		m:          map[string]*breakerState{},
	}
}

// allow decides whether an execution of hash may proceed. When it
// returns false, retryAfter is the time until the next half-open
// probe becomes possible.
func (b *breaker) allow(hash string) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[hash]
	if st == nil || st.openUntil.IsZero() {
		return true, 0
	}
	now := b.now()
	if now.Before(st.openUntil) {
		b.rejects++
		return false, st.openUntil.Sub(now)
	}
	if st.probing {
		// One probe at a time; everyone else keeps getting the fast
		// rejection until the probe's outcome is recorded.
		b.rejects++
		return false, b.interval(st.trips)
	}
	st.probing = true
	b.probes++
	return true, 0
}

// record tallies the outcome of an execution of hash. bad means the
// run panicked or blew a budget (see breakerBad); anything else —
// success or a plain guest runtime error — counts as healthy.
func (b *breaker) record(hash string, bad bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[hash]
	if st == nil {
		if !bad {
			return
		}
		st = &breakerState{}
		b.m[hash] = st
	}
	if st.probing {
		st.probing = false
		if !bad {
			b.recoveries++
			delete(b.m, hash)
			return
		}
		st.trips++
		st.openUntil = b.now().Add(b.interval(st.trips))
		b.trips++
		return
	}
	if !bad {
		if st.openUntil.IsZero() {
			delete(b.m, hash)
		}
		return
	}
	if !st.openUntil.IsZero() {
		// Already open (a request that was in flight when the breaker
		// tripped); nothing more to do.
		return
	}
	st.fails++
	if st.fails >= b.threshold {
		st.openUntil = b.now().Add(b.interval(st.trips))
		b.trips++
	}
}

// interval is the open duration after the (trips+1)-th trip:
// backoff * 2^trips, capped.
func (b *breaker) interval(trips int) time.Duration {
	d := b.backoff
	for i := 0; i < trips && d < b.maxBackoff; i++ {
		d *= 2
	}
	if d > b.maxBackoff {
		d = b.maxBackoff
	}
	return d
}

type breakerSnapshot struct {
	Enabled    bool   `json:"enabled"`
	Programs   int    `json:"programs"` // hashes currently quarantined (open or probing)
	Trips      uint64 `json:"trips"`
	Rejects    uint64 `json:"rejects"`
	Probes     uint64 `json:"probes"`
	Recoveries uint64 `json:"recoveries"`
}

func (b *breaker) snapshot() breakerSnapshot {
	if b == nil {
		return breakerSnapshot{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	open := 0
	for _, st := range b.m {
		if !st.openUntil.IsZero() {
			open++
		}
	}
	return breakerSnapshot{
		Enabled:    true,
		Programs:   open,
		Trips:      b.trips,
		Rejects:    b.rejects,
		Probes:     b.probes,
		Recoveries: b.recoveries,
	}
}
