package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"memoir/internal/telemetry"
)

type atomicCounter struct{ v atomic.Uint64 }

func (c *atomicCounter) Add(n uint64) { c.v.Add(n) }
func (c *atomicCounter) Load() uint64 { return c.v.Load() }

// PhaseCounters are the cumulative pipeline-phase execution counts.
// They are the server-side ground truth for "the cache worked": a
// hot-cache request advances none of them, and the CI smoke job
// asserts exactly that between two identical requests.
type PhaseCounters struct {
	Parses     atomicCounter
	ADEApplies atomicCounter
	Compiles   atomicCounter
}

type phaseSnapshot struct {
	Parses     uint64 `json:"parses"`
	ADEApplies uint64 `json:"adeApplies"`
	Compiles   uint64 `json:"compiles"`
}

func (p *PhaseCounters) snapshot() phaseSnapshot {
	return phaseSnapshot{
		Parses:     p.Parses.Load(),
		ADEApplies: p.ADEApplies.Load(),
		Compiles:   p.Compiles.Load(),
	}
}

// latencyHist is a fixed-bound histogram of request durations. The
// bucket upper bounds grow geometrically from 50µs to ~26s; the
// percentile estimate returns the upper bound of the bucket the
// requested quantile falls in (documented as an upper-bound
// estimate in /v1/stats; the load harness computes exact client-side
// percentiles for EXPERIMENTS.md).
type latencyHist struct {
	mu      sync.Mutex
	bounds  []time.Duration
	buckets []uint64
	count   uint64
	sum     time.Duration
}

func newLatencyHist() *latencyHist {
	var bounds []time.Duration
	for b := 50 * time.Microsecond; b < 30*time.Second; b = b * 2 {
		bounds = append(bounds, b)
	}
	return &latencyHist{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
}

func (h *latencyHist) observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.buckets[i]++
	h.count++
	h.sum += d
}

// quantile returns the upper bound of the bucket containing quantile
// q in (0,1].
func (h *latencyHist) quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] * 2
		}
	}
	return h.bounds[len(h.bounds)-1] * 2
}

func (h *latencyHist) meanMs() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum.Microseconds()) / float64(h.count) / 1000
}

// teleAggregate folds per-request telemetry results into a running
// suite-level summary, reusing internal/telemetry's Result shape as
// the source. It answers "what is this fleet of guest programs doing
// to its collections" without retaining per-request data.
type teleAggregate struct {
	mu       sync.Mutex
	requests uint64
	sites    uint64
	enums    uint64
	collOps  uint64
	transOps uint64 // enc+dec+add across all enumerations
}

func (a *teleAggregate) fold(t *telemetry.Telemetry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.requests++
	a.sites += uint64(len(t.Sites))
	a.enums += uint64(len(t.Enums))
	for _, s := range t.Sites {
		a.collOps += s.Total()
	}
	for _, e := range t.Enums {
		a.transOps += e.Trans()
	}
}

type teleSnapshot struct {
	Requests uint64 `json:"requests"`
	Sites    uint64 `json:"sites"`
	Enums    uint64 `json:"enums"`
	CollOps  uint64 `json:"collOps"`
	TransOps uint64 `json:"transOps"`
}

func (a *teleAggregate) snapshot() teleSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return teleSnapshot{
		Requests: a.requests,
		Sites:    a.sites,
		Enums:    a.enums,
		CollOps:  a.collOps,
		TransOps: a.transOps,
	}
}

// errCodeCounters tracks error responses by stable code.
type errCodeCounters struct {
	mu sync.Mutex
	m  map[string]uint64
}

func newErrCodeCounters() *errCodeCounters { return &errCodeCounters{m: map[string]uint64{}} }

func (c *errCodeCounters) inc(code string) {
	c.mu.Lock()
	c.m[code]++
	c.mu.Unlock()
}

func (c *errCodeCounters) snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}
