package cache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func key(i int) Key { return Key{ProgramHash: fmt.Sprintf("h%03d", i), OptionsFP: "fp"} }

func TestHitMissEvictionDeterminism(t *testing.T) {
	c := New(2, 0)
	c.Put(key(1), "a", 10)
	c.Put(key(2), "b", 10)
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("want hit on key 1")
	}
	// key 2 is now LRU; inserting key 3 must evict exactly it.
	c.Put(key(3), "c", 10)
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("key 2 should have been evicted")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 should have survived")
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Fatal("key 3 should be present")
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("counters: %+v", st)
	}
	// The same operation sequence on a fresh cache yields the same
	// counters and the same survivor set — eviction is deterministic.
	c2 := New(2, 0)
	c2.Put(key(1), "a", 10)
	c2.Put(key(2), "b", 10)
	c2.Get(key(1))
	c2.Put(key(3), "c", 10)
	c2.Get(key(2))
	c2.Get(key(1))
	c2.Get(key(3))
	if got := c2.Stats(); got != st {
		t.Fatalf("replay diverged: %+v vs %+v", got, st)
	}
	if !reflect.DeepEqual(c.Keys(), c2.Keys()) {
		t.Fatalf("replay key order diverged: %v vs %v", c.Keys(), c2.Keys())
	}
}

func TestByteBoundEviction(t *testing.T) {
	c := New(0, 100)
	c.Put(key(1), "a", 40)
	c.Put(key(2), "b", 40)
	c.Put(key(3), "c", 40) // 120 > 100: evict key 1
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("key 1 should have been evicted by the byte bound")
	}
	if st := c.Stats(); st.Bytes != 80 || st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats after byte eviction: %+v", st)
	}
	// A single oversized artifact is rejected, not cached.
	c.Put(key(9), "huge", 101)
	if _, ok := c.Get(key(9)); ok {
		t.Fatal("oversized entry should have been rejected")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Entries != 2 {
		t.Fatalf("stats after reject: %+v", st)
	}
}

func TestReplaceUpdatesBytes(t *testing.T) {
	c := New(0, 1000)
	c.Put(key(1), "a", 100)
	c.Put(key(1), "a2", 250)
	if st := c.Stats(); st.Bytes != 250 || st.Entries != 1 {
		t.Fatalf("replace did not adjust bytes: %+v", st)
	}
	v, ok := c.Get(key(1))
	if !ok || v.(string) != "a2" {
		t.Fatalf("replace did not swap value: %v %v", v, ok)
	}
}

func TestOptionsFingerprintSeparatesEntries(t *testing.T) {
	c := New(0, 0)
	kDefault := Key{ProgramHash: "h", OptionsFP: "rte=true"}
	kAblated := Key{ProgramHash: "h", OptionsFP: "rte=false"}
	c.Put(kDefault, "with-rte", 1)
	c.Put(kAblated, "without-rte", 1)
	a, _ := c.Get(kDefault)
	b, _ := c.Get(kAblated)
	if a == b {
		t.Fatal("same program under different options must not alias")
	}
	if c.Len() != 2 {
		t.Fatalf("want 2 entries, got %d", c.Len())
	}
}

func TestAliasResolveAndEviction(t *testing.T) {
	c := New(2, 0)
	c.Put(key(1), "a", 1)
	c.Alias("raw-text-1", key(1))
	k, v, ok := c.Resolve("raw-text-1")
	if !ok || k != key(1) || v.(string) != "a" {
		t.Fatalf("resolve: %v %v %v", k, v, ok)
	}
	// A resolve refreshes recency like a Get: key 2, not key 1, is
	// the LRU victim here.
	c.Put(key(2), "b", 1)
	c.Resolve("raw-text-1")
	c.Put(key(3), "c", 1) // evicts key 2
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("key 2 should have been the LRU victim")
	}
	if _, _, ok := c.Resolve("raw-text-1"); !ok {
		t.Fatal("alias of surviving entry must still resolve")
	}
	// Aliases die with their entry.
	c.Put(key(4), "d", 1)
	c.Put(key(5), "e", 1) // push key 1 out
	if _, _, ok := c.Resolve("raw-text-1"); ok {
		t.Fatal("alias must die with its evicted entry")
	}
	// Aliasing an unknown key is a no-op.
	c.Alias("dangling", key(99))
	if _, _, ok := c.Resolve("dangling"); ok {
		t.Fatal("dangling alias must not resolve")
	}
}

func TestAliasCap(t *testing.T) {
	c := New(0, 0)
	c.Put(key(1), "a", 1)
	for i := 0; i < maxAliases+5; i++ {
		c.Alias(fmt.Sprintf("spelling-%d", i), key(1))
	}
	for i := 0; i < maxAliases; i++ {
		if _, _, ok := c.Resolve(fmt.Sprintf("spelling-%d", i)); !ok {
			t.Fatalf("alias %d inside the cap must resolve", i)
		}
	}
	if _, _, ok := c.Resolve(fmt.Sprintf("spelling-%d", maxAliases)); ok {
		t.Fatal("alias beyond the cap must be dropped")
	}
}

// Concurrent readers/writers under -race: the counters must balance
// and the bounds must hold at every point.
func TestConcurrentAccess(t *testing.T) {
	const (
		goroutines = 8
		opsEach    = 2000
		maxEntries = 16
	)
	c := New(maxEntries, 0)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := key((g*7 + i) % 40)
				switch i % 4 {
				case 0:
					c.Put(k, g, 8)
					c.Alias(fmt.Sprintf("alias-%d-%d", g, i%9), k)
				case 1, 2:
					c.Get(k)
				case 3:
					c.Resolve(fmt.Sprintf("alias-%d-%d", g, i%9))
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > maxEntries {
		t.Fatalf("entry bound violated: %d > %d", st.Entries, maxEntries)
	}
	if int64(st.Entries)*8 != st.Bytes {
		t.Fatalf("byte accounting drifted: %d entries but %d bytes", st.Entries, st.Bytes)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
