// Package cache implements the content-addressed compiled-artifact
// cache at the heart of adeserved. Entries are keyed by
// (canonical program hash, ADE options fingerprint) — see
// ir.ProgramHash and core.Options.Fingerprint — so any two requests
// that would compile to the same artifact share one entry, however
// their source text was formatted.
//
// The cache is a strict LRU bounded by both entry count and total
// modeled bytes, safe for concurrent use, with hit/miss/eviction
// counters the /v1/stats endpoint exposes.
//
// A second, raw-text index ("aliases") fronts the canonical map:
// the server registers sha256(request text)+fingerprint → key after
// a compile, so a byte-identical repeat request resolves its artifact
// without even parsing. Aliases are attached to their entry and die
// with it on eviction.
package cache

import (
	"container/list"
	"sync"
)

// Key addresses one compiled artifact.
type Key struct {
	// ProgramHash is ir.ProgramHash of the canonical (pre-ADE)
	// program.
	ProgramHash string
	// OptionsFP is the compile-options fingerprint
	// (core.Options.Fingerprint, or the server's "ade=off" marker).
	OptionsFP string
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Rejected  uint64 `json:"rejected"` // single entries larger than the byte bound
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxEntry  int    `json:"maxEntries"`
	MaxBytes  int64  `json:"maxBytes"`
}

// HitRatio returns hits/(hits+misses), 0 when idle.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type entry struct {
	key     Key
	value   any
	size    int64
	aliases []string
}

// Cache is a bounded LRU. The zero value is not usable; call New.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	byKey      map[Key]*list.Element
	byAlias    map[string]*list.Element
	bytes      int64
	hits       uint64
	misses     uint64
	evictions  uint64
	rejected   uint64
}

// maxAliases bounds how many raw-text spellings one entry remembers;
// beyond that, repeat requests with yet another spelling still hit
// via the canonical key after a parse.
const maxAliases = 16

// New returns a cache bounded to maxEntries entries and maxBytes
// total modeled bytes. Non-positive bounds mean unbounded on that
// axis.
func New(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		byKey:      map[Key]*list.Element{},
		byAlias:    map[string]*list.Element{},
	}
}

// Get returns the artifact for k, marking it most recently used.
// Every call counts as a hit or a miss.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Resolve is the raw-text fast path: it looks up an alias registered
// with Alias and returns the canonical key and artifact. A resolve
// counts as a hit; a failed resolve does NOT count as a miss (the
// caller falls through to Get, which counts).
func (c *Cache) Resolve(alias string) (Key, any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byAlias[alias]
	if !ok {
		return Key{}, nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	return e.key, e.value, true
}

// Put inserts (or replaces) the artifact for k with the given modeled
// size and evicts least-recently-used entries until both bounds hold.
// An artifact alone larger than the byte bound is rejected rather
// than cached (counted in Stats.Rejected).
func (c *Cache) Put(k Key, v any, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && size > c.maxBytes {
		c.rejected++
		return
	}
	if el, ok := c.byKey[k]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.value, e.size = v, size
		c.ll.MoveToFront(el)
		c.evictUntilBounded()
		return
	}
	e := &entry{key: k, value: v, size: size}
	c.byKey[k] = c.ll.PushFront(e)
	c.bytes += size
	c.evictUntilBounded()
}

// Alias registers a raw-text spelling for an existing entry. Unknown
// keys and saturated alias lists are ignored.
func (c *Cache) Alias(alias string, k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		return
	}
	if _, dup := c.byAlias[alias]; dup {
		return
	}
	e := el.Value.(*entry)
	if len(e.aliases) >= maxAliases {
		return
	}
	e.aliases = append(e.aliases, alias)
	c.byAlias[alias] = el
}

// evictUntilBounded removes LRU entries while either bound is
// exceeded. Caller holds c.mu.
func (c *Cache) evictUntilBounded() {
	for c.ll.Len() > 0 {
		over := (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)
		if !over {
			return
		}
		el := c.ll.Back()
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.byKey, e.key)
		for _, a := range e.aliases {
			delete(c.byAlias, a)
		}
		c.bytes -= e.size
		c.evictions++
	}
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Rejected:  c.rejected,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxEntry:  c.maxEntries,
		MaxBytes:  c.maxBytes,
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the cached keys from most to least recently used (for
// tests and debugging).
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}
