package server

import (
	"testing"
	"time"
)

// clockedBreaker returns a breaker with a manually-advanced clock.
func clockedBreaker(threshold int, backoff, max time.Duration) (*breaker, *time.Time) {
	b := newBreaker(threshold, backoff, max)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	b, now := clockedBreaker(3, time.Second, 8*time.Second)
	const h = "prog-a"

	// Two consecutive bad runs: still closed.
	b.record(h, true)
	b.record(h, true)
	if ok, _ := b.allow(h); !ok {
		t.Fatal("breaker tripped before the threshold")
	}
	// Third bad run trips it.
	b.record(h, true)
	if ok, retry := b.allow(h); ok || retry <= 0 {
		t.Fatalf("open breaker admitted a request (retry=%v)", retry)
	}
	// Still open just before the backoff elapses.
	*now = now.Add(999 * time.Millisecond)
	if ok, _ := b.allow(h); ok {
		t.Fatal("admitted before the backoff elapsed")
	}
	// After the backoff: exactly one half-open probe.
	*now = now.Add(2 * time.Millisecond)
	if ok, _ := b.allow(h); !ok {
		t.Fatal("half-open probe not admitted")
	}
	if ok, _ := b.allow(h); ok {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: re-open with a doubled interval.
	b.record(h, true)
	*now = now.Add(1500 * time.Millisecond)
	if ok, _ := b.allow(h); ok {
		t.Fatal("doubled backoff not honored")
	}
	*now = now.Add(600 * time.Millisecond)
	if ok, _ := b.allow(h); !ok {
		t.Fatal("probe not admitted after doubled backoff")
	}
	// Probe succeeds: the hash is forgotten entirely.
	b.record(h, false)
	if ok, _ := b.allow(h); !ok {
		t.Fatal("recovered hash still rejected")
	}
	snap := b.snapshot()
	if !snap.Enabled || snap.Trips != 2 || snap.Recoveries != 1 || snap.Probes != 2 || snap.Rejects != 4 {
		t.Fatalf("snapshot %+v", snap)
	}
	if snap.Programs != 0 {
		t.Fatalf("recovered hash still counted as quarantined: %+v", snap)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, _ := clockedBreaker(3, time.Second, 8*time.Second)
	const h = "prog-b"
	for i := 0; i < 10; i++ {
		b.record(h, true)
		b.record(h, true)
		b.record(h, false) // healthy run wipes the tally
	}
	if ok, _ := b.allow(h); !ok {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	if snap := b.snapshot(); snap.Trips != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	b, _ := clockedBreaker(1, time.Second, 4*time.Second)
	for trips, want := range map[int]time.Duration{
		0: time.Second,
		1: 2 * time.Second,
		2: 4 * time.Second,
		3: 4 * time.Second,
		9: 4 * time.Second,
	} {
		if got := b.interval(trips); got != want {
			t.Errorf("interval(%d) = %v, want %v", trips, got, want)
		}
	}
}

func TestBreakerHashesAreIndependent(t *testing.T) {
	b, _ := clockedBreaker(2, time.Second, 8*time.Second)
	b.record("bad", true)
	b.record("bad", true)
	if ok, _ := b.allow("bad"); ok {
		t.Fatal("bad hash not tripped")
	}
	if ok, _ := b.allow("good"); !ok {
		t.Fatal("unrelated hash rejected")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Second, time.Minute)
	if b != nil {
		t.Fatal("threshold < 0 must disable the breaker")
	}
	// All methods are nil-safe no-ops.
	b.record("x", true)
	b.record("x", true)
	b.record("x", true)
	if ok, _ := b.allow("x"); !ok {
		t.Fatal("disabled breaker rejected a request")
	}
	if snap := b.snapshot(); snap.Enabled {
		t.Fatalf("disabled breaker reports enabled: %+v", snap)
	}
}
