package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memoir/internal/adeprofile"
)

// A small enumerable kernel: builds a sparse-keyed map, probes it,
// emits. ADE enumerates the map, so compiled-with-ADE vs without
// differ and the cache must keep them apart.
const histProg = `fn u64 @main(): exported
  %input := new Seq<u64>()
  do:
    %i := phi(0, %i1)
    %in0 := phi(%input, %in1)
    %h := mul(%i, 2654435761)
    %v := rem(%h, 97)
    %sparse := mul(%v, 982451653)
    %in1 := insert(%in0, end, %sparse)
    %i1 := add(%i, 1)
    %more := lt(%i1, 500)
  while %more
  %inF := phi(%in0)
  %hist := new Map<u64,u32>()
  for [%i2, %val] in %inF:
    %hist0 := phi(%hist, %hist3)
    %cond := has(%hist0, %val)
    if %cond:
      %freq := read(%hist0, %val)
    else:
      %hist1 := insert(%hist0, %val)
    %freq0 := phi(%freq, 0)
    %hist2 := phi(%hist0, %hist1)
    %freq1 := add(%freq0, 1)
    %hist3 := write(%hist2, %val, %freq1)
  %histF := phi(%hist0)
  for [%k, %f] in %histF:
    %g64 := cast<u64>(%f)
    %kv := add(%k, %g64)
    emit(%kv)
  %n := size(%histF)
  ret %n
`

// An unbounded counting loop: budget-interruption fodder.
const spinProg = `fn u64 @main(): exported
  do:
    %i := phi(0, %i1)
    %i1 := add(%i, 1)
    %more := lt(%i1, 1000000000)
  while %more
  %iF := phi(%i1)
  ret %iF
`

// Unbounded memory growth.
const growProg = `fn u64 @main(): exported
  %s := new Seq<u64>()
  do:
    %i := phi(0, %i1)
    %s0 := phi(%s, %s1)
    %s1 := insert(%s0, end, %i)
    %i1 := add(%i, 1)
    %more := lt(%i1, 10000000)
  while %more
  %sF := phi(%s0)
  %n := size(%sF)
  ret %n
`

const divZeroProg = `fn u64 @main(): exported
  %z := sub(1, 1)
  %d := div(1, %z)
  ret %d
`

func newTestServer(t *testing.T, mut ...func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.AccessLog = nil
	// The breaker is off by default in tests: the error-taxonomy tests
	// deliberately hammer one program with budget blowouts and must
	// see the underlying codes, not `quarantined`. Breaker tests
	// re-enable it explicitly.
	cfg.BreakerThreshold = -1
	for _, m := range mut {
		m(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.pool.Close() })
	return s
}

func postJSON(t testing.TB, h http.Handler, path string, req any) (*Response, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, h, path, body, "application/json", "")
}

func postRaw(t testing.TB, h http.Handler, path string, body []byte, contentType, query string) (*Response, int) {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, path+query, bytes.NewReader(body))
	r.Header.Set("Content-Type", contentType)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON (%d): %v\n%s", w.Code, err, w.Body.String())
	}
	return &resp, w.Code
}

func TestRunColdThenHot(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()

	for _, engine := range []string{"vm", "interp"} {
		t.Run(engine, func(t *testing.T) {
			prog := strings.ReplaceAll(histProg, "97", map[string]string{"vm": "89", "interp": "83"}[engine])
			cold, code := postJSON(t, h, "/v1/run", Request{Program: prog, Engine: engine})
			if code != http.StatusOK || !cold.OK {
				t.Fatalf("cold run failed: %d %+v", code, cold.Error)
			}
			if cold.Cache.Hit {
				t.Fatal("first request cannot hit the cache")
			}
			if !cold.Phases.Parsed || !cold.Phases.ADE || !cold.Phases.Compiled {
				t.Fatalf("cold run must run all phases: %+v", cold.Phases)
			}
			if cold.Classes == 0 {
				t.Fatal("histogram kernel should form at least one enumeration class")
			}

			hot, code := postJSON(t, h, "/v1/run", Request{Program: prog, Engine: engine})
			if code != http.StatusOK || !hot.OK {
				t.Fatalf("hot run failed: %d %+v", code, hot.Error)
			}
			if !hot.Cache.Hit {
				t.Fatal("second identical request must hit the cache")
			}
			// The load-bearing assertion: a hot request re-runs NO
			// pipeline phase — not even the parse (raw-text alias).
			if hot.Phases.Parsed || hot.Phases.ADE || hot.Phases.Compiled {
				t.Fatalf("hot run re-ran pipeline phases: %+v", hot.Phases)
			}
			if hot.Cache.Key != cold.Cache.Key {
				t.Fatalf("cache key changed between identical requests: %q vs %q", cold.Cache.Key, hot.Cache.Key)
			}
			// Identical observable behavior from the cached artifact.
			if *hot.Output != *cold.Output || hot.Result != cold.Result || hot.Stats.Steps != cold.Stats.Steps {
				t.Fatalf("cached run diverged: cold=%+v/%+v hot=%+v/%+v", cold.Result, cold.Output, hot.Result, hot.Output)
			}
		})
	}
}

// Reformatting the program (comments, blank lines) changes the raw
// text but not the canonical hash: the cache must still hit, after a
// parse.
func TestRunCanonicalHashHit(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	cold, _ := postJSON(t, h, "/v1/run", Request{Program: histProg})
	if !cold.OK || cold.Cache.Hit {
		t.Fatalf("cold: %+v", cold)
	}
	reformatted := "// a leading comment\n" + strings.Replace(histProg, "  %hist := new", "\n  %hist := new", 1)
	hot, _ := postJSON(t, h, "/v1/run", Request{Program: reformatted})
	if !hot.OK || !hot.Cache.Hit {
		t.Fatalf("reformatted program missed the cache: %+v %+v", hot.Cache, hot.Error)
	}
	if !hot.Phases.Parsed || hot.Phases.ADE || hot.Phases.Compiled {
		t.Fatalf("canonical hit should parse but skip ADE+compile: %+v", hot.Phases)
	}
	if hot.Cache.Key != cold.Cache.Key {
		t.Fatalf("canonical keys differ: %q vs %q", cold.Cache.Key, hot.Cache.Key)
	}
}

// Engines share one artifact: a VM run primes the cache for an
// interpreter run of the same program.
func TestEnginesShareCacheEntry(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	vmResp, _ := postJSON(t, h, "/v1/run", Request{Program: histProg, Engine: "vm"})
	inResp, _ := postJSON(t, h, "/v1/run", Request{Program: histProg, Engine: "interp"})
	if !vmResp.OK || !inResp.OK {
		t.Fatalf("runs failed: %+v %+v", vmResp.Error, inResp.Error)
	}
	if !inResp.Cache.Hit {
		t.Fatal("interp run should reuse the artifact the vm run compiled")
	}
	// Engine parity on the cached artifact.
	if *vmResp.Output != *inResp.Output || vmResp.Stats.Steps != inResp.Stats.Steps {
		t.Fatalf("engines disagree on cached artifact: vm=%+v interp=%+v", vmResp, inResp)
	}
}

// Different ADE options are different artifacts: no aliasing.
func TestOptionsFingerprintSeparatesArtifacts(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	withADE, _ := postJSON(t, h, "/v1/run", Request{Program: histProg})
	off := false
	withoutADE, _ := postJSON(t, h, "/v1/run", Request{Program: histProg, ADE: &off})
	if !withADE.OK || !withoutADE.OK {
		t.Fatalf("runs failed: %+v %+v", withADE.Error, withoutADE.Error)
	}
	if withoutADE.Cache.Hit {
		t.Fatal("ade=off must not reuse the ade=on artifact")
	}
	if withADE.Cache.Key == withoutADE.Cache.Key {
		t.Fatal("cache keys must differ across options")
	}
	rte := false
	ablated, _ := postJSON(t, h, "/v1/run", Request{Program: histProg, Options: &ADEOptions{RTE: &rte}})
	if !ablated.OK || ablated.Cache.Hit {
		t.Fatalf("ablated options must compile their own artifact: %+v", ablated)
	}
	if ablated.Cache.Key == withADE.Cache.Key {
		t.Fatal("ablated key must differ from default key")
	}
}

// Satellite: the budget taxonomy maps to stable codes and statuses on
// BOTH engines, with engine-identical structured bodies.
func TestBudgetErrorMapping(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	cases := []struct {
		name   string
		req    Request
		code   string
		status int
	}{
		{"step-budget", Request{Program: spinProg, MaxSteps: 10_000}, CodeStepBudget, http.StatusTooManyRequests},
		{"mem-budget", Request{Program: growProg, MaxMemBytes: 65_536}, CodeMemBudget, http.StatusTooManyRequests},
		{"deadline", Request{Program: spinProg, TimeoutMs: 30}, CodeDeadline, http.StatusRequestTimeout},
		{"runtime-error", Request{Program: divZeroProg}, CodeRuntimeError, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got [2]*Response
			for i, engine := range []string{"interp", "vm"} {
				req := tc.req
				req.Engine = engine
				resp, status := postJSON(t, h, "/v1/run", req)
				if status != tc.status {
					t.Fatalf("%s: want HTTP %d, got %d (%+v)", engine, tc.status, status, resp.Error)
				}
				if resp.OK || resp.Error == nil || resp.Error.Code != tc.code {
					t.Fatalf("%s: want code %q, got %+v", engine, tc.code, resp.Error)
				}
				if resp.Error.Status != tc.status {
					t.Fatalf("%s: body status %d != transport %d", engine, resp.Error.Status, tc.status)
				}
				if tc.code == CodeStepBudget || tc.code == CodeMemBudget {
					if !resp.Partial || resp.Stats == nil || resp.Stats.Steps == 0 {
						t.Fatalf("%s: interrupted run must carry partial stats: %+v", engine, resp)
					}
					if resp.Error.Fn == "" || resp.Error.Steps == 0 {
						t.Fatalf("%s: structured error must localize the interruption: %+v", engine, resp.Error)
					}
				}
				got[i] = resp
			}
			// Deterministic budget stops are engine-identical down to
			// the structured error and partial step count (deadline is
			// inherently timing-dependent, so only the code matches).
			if tc.code == CodeStepBudget || tc.code == CodeMemBudget || tc.code == CodeRuntimeError {
				a, b := got[0], got[1]
				if a.Error.Message != b.Error.Message || a.Error.Fn != b.Error.Fn || a.Error.Steps != b.Error.Steps {
					t.Fatalf("engines disagree on structured error:\n interp: %+v\n vm:     %+v", a.Error, b.Error)
				}
				if a.Stats != nil && b.Stats != nil && *a.Stats != *b.Stats {
					t.Fatalf("engines disagree on partial stats:\n interp: %+v\n vm:     %+v", a.Stats, b.Stats)
				}
			}
		})
	}
	if resp, _ := postJSON(t, h, "/v1/run", Request{Program: histProg}); !resp.OK {
		t.Fatalf("daemon must keep serving after budget errors: %+v", resp.Error)
	}
}

// Budget requests above the server ceiling are clamped.
func TestBudgetCeilingClamp(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.CeilMaxSteps = 5_000 })
	resp, status := postJSON(t, s.Handler(), "/v1/run", Request{Program: spinProg, MaxSteps: 1 << 60})
	if status != http.StatusTooManyRequests || resp.Error == nil || resp.Error.Code != CodeStepBudget {
		t.Fatalf("ceiling clamp did not bite: %d %+v", status, resp.Error)
	}
	// The engine detects exhaustion on the step after the budget
	// (Steps > MaxSteps), so the partial count is ceiling+1.
	if resp.Stats.Steps > 5_001 {
		t.Fatalf("ran %d steps past the 5000 ceiling", resp.Stats.Steps)
	}
}

// Acceptance: a mid-request injected fault (PR-5 registry) degrades
// that request with a 4xx + structured error; the daemon keeps
// serving, and faulted requests never touch the cache.
func TestFaultInjectionDegradesOneRequest(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	prime, _ := postJSON(t, h, "/v1/run", Request{Program: histProg})
	if !prime.OK {
		t.Fatalf("prime: %+v", prime.Error)
	}
	misses := s.CacheStats().Misses

	// Runtime fault: the 1st collection allocation fails mid-run; the
	// engine contains the panic and the API maps it to 422.
	faulted, status := postJSON(t, h, "/v1/run", Request{Program: histProg, Fault: "alloc-fail:1"})
	if status != http.StatusUnprocessableEntity || faulted.OK || faulted.Error.Code != CodeRuntimePanic {
		t.Fatalf("alloc-fail: want 422 runtime-panic, got %d %+v", status, faulted.Error)
	}
	if !strings.Contains(faulted.Error.Message, "injected fault") {
		t.Fatalf("fault should surface in the structured message: %+v", faulted.Error)
	}
	if got := s.CacheStats().Misses; got != misses {
		t.Fatalf("faulted request touched the cache: misses %d -> %d", misses, got)
	}

	// Compile-time fault under the production sandbox: the pass rolls
	// back, the request succeeds degraded (unoptimized program).
	degraded, status := postJSON(t, h, "/v1/run", Request{Program: histProg, Fault: "pass-panic:transform"})
	if status != http.StatusOK || !degraded.OK {
		t.Fatalf("sandboxed pass fault should degrade, not fail: %d %+v", status, degraded.Error)
	}
	if len(degraded.Degraded) == 0 {
		t.Fatal("degraded sub-pass list should be reported")
	}

	// Same fault with the sandbox off: a 422 with the ADE error code.
	hard := newTestServer(t, func(c *Config) { c.Sandbox = false })
	failed, status := postJSON(t, hard.Handler(), "/v1/run", Request{Program: histProg, Fault: "pass-panic:transform"})
	if status != http.StatusUnprocessableEntity || failed.Error == nil || failed.Error.Code != CodeADEError {
		t.Fatalf("unsandboxed pass fault: want 422 ade-error, got %d %+v", status, failed.Error)
	}

	// The daemon keeps serving — and still from the cache.
	after, _ := postJSON(t, h, "/v1/run", Request{Program: histProg})
	if !after.OK || !after.Cache.Hit {
		t.Fatalf("daemon must keep serving hot after faults: %+v %+v", after.Error, after.Cache)
	}
	if *after.Output != *prime.Output {
		t.Fatal("output changed after fault episode")
	}
}

func TestCompileEndpoint(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	c1, status := postJSON(t, h, "/v1/compile", Request{Program: histProg})
	if status != http.StatusOK || !c1.OK || c1.Cache.Hit {
		t.Fatalf("compile: %d %+v", status, c1)
	}
	if c1.Result != "" || c1.Stats != nil {
		t.Fatal("compile response must not carry run results")
	}
	c2, _ := postJSON(t, h, "/v1/compile", Request{Program: histProg})
	if !c2.Cache.Hit {
		t.Fatal("second compile must hit")
	}
	// And a run after a compile is hot from the start.
	r, _ := postJSON(t, h, "/v1/run", Request{Program: histProg})
	if !r.OK || !r.Cache.Hit {
		t.Fatalf("run after compile should be hot: %+v", r)
	}
}

func TestDecoderHardening(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxBodyBytes = 4096
		c.MaxProgramBytes = 1024
	})
	h := s.Handler()
	cases := []struct {
		name   string
		body   string
		ctype  string
		status int
		code   string
	}{
		{"empty body", ``, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"not json", `{{{{`, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"unknown field", `{"program":"x","nope":1}`, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"trailing garbage", `{"program":"x"} extra`, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"empty program", `{"program":""}`, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"bad engine", `{"program":"x","engine":"gpu"}`, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"bad fault", `{"program":"x","fault":"nuke-everything"}`, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"bad impl", `{"program":"x","options":{"setImpl":"BloomSet"}}`, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"negative budget", `{"program":"x","timeoutMs":-5}`, "application/json", http.StatusBadRequest, CodeBadRequest},
		{"body too large", `{"program":"` + strings.Repeat("a", 5000) + `"}`, "application/json", http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
		{"program too large", `{"program":"` + strings.Repeat("a", 2000) + `"}`, "application/json", http.StatusRequestEntityTooLarge, CodeBodyTooLarge},
		{"parse error", `{"program":"fn oops"}`, "application/json", http.StatusBadRequest, CodeParseError},
		{"raw mir parse error", "not a program", "text/plain", http.StatusBadRequest, CodeParseError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, status := postRaw(t, h, "/v1/run", []byte(tc.body), tc.ctype, "")
			if status != tc.status || resp.Error == nil || resp.Error.Code != tc.code {
				t.Fatalf("want %d/%s, got %d/%+v", tc.status, tc.code, status, resp.Error)
			}
		})
	}
	// GET on a POST endpoint.
	r := httptest.NewRequest(http.MethodGet, "/v1/run", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: want 405, got %d", w.Code)
	}
}

// The raw-.mir convenience format: program as body, options in query.
func TestRawMirRequest(t *testing.T) {
	s := newTestServer(t)
	h := s.Handler()
	resp, status := postRaw(t, h, "/v1/run", []byte(histProg), "text/plain", "?engine=vm&telemetry=1")
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("raw mir run: %d %+v", status, resp.Error)
	}
	if resp.Engine != "vm" {
		t.Fatalf("query engine ignored: %q", resp.Engine)
	}
	if len(resp.Telemetry) == 0 {
		t.Fatal("telemetry requested via query but absent")
	}
	// Raw and JSON spellings of the same program share one artifact.
	viaJSON, _ := postJSON(t, h, "/v1/run", Request{Program: histProg})
	if !viaJSON.Cache.Hit {
		t.Fatal("JSON request should hit the artifact the raw request compiled")
	}
}

func TestUnknownEntry(t *testing.T) {
	s := newTestServer(t)
	resp, status := postJSON(t, s.Handler(), "/v1/run", Request{Program: histProg, Entry: "nope"})
	if status != http.StatusBadRequest || resp.Error == nil || resp.Error.Code != CodeUnknownEntry {
		t.Fatalf("want 400 unknown-entry, got %d %+v", status, resp.Error)
	}
}

func TestStatsEndpoint(t *testing.T) {
	logBuf := &syncBuffer{}
	s := newTestServer(t, func(c *Config) { c.AccessLog = logBuf })
	h := s.Handler()
	postJSON(t, h, "/v1/run", Request{Program: histProg, Telemetry: true})
	postJSON(t, h, "/v1/run", Request{Program: histProg, Telemetry: true})
	postJSON(t, h, "/v1/run", Request{Program: spinProg, MaxSteps: 1000})

	r := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var doc struct {
		Requests struct {
			Total           uint64 `json:"total"`
			OK              uint64 `json:"ok"`
			ServedFromCache uint64 `json:"servedFromCache"`
		} `json:"requests"`
		Errors map[string]uint64 `json:"errors"`
		Cache  struct {
			Hits     uint64  `json:"hits"`
			Misses   uint64  `json:"misses"`
			Entries  int     `json:"entries"`
			HitRatio float64 `json:"hitRatio"`
		} `json:"cache"`
		Phases struct {
			Parses     uint64 `json:"parses"`
			ADEApplies uint64 `json:"adeApplies"`
			Compiles   uint64 `json:"compiles"`
		} `json:"phases"`
		Latency   map[string]any `json:"latency"`
		Telemetry teleSnapshot   `json:"telemetry"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, w.Body.String())
	}
	if doc.Requests.Total != 3 || doc.Requests.OK != 2 {
		t.Fatalf("request counters: %+v", doc.Requests)
	}
	if doc.Requests.ServedFromCache != 1 {
		t.Fatalf("servedFromCache: %+v", doc.Requests)
	}
	if doc.Errors[CodeStepBudget] != 1 {
		t.Fatalf("error counters: %+v", doc.Errors)
	}
	if doc.Cache.Hits != 1 || doc.Cache.Entries != 2 {
		t.Fatalf("cache counters: %+v", doc.Cache)
	}
	if doc.Phases.Parses != 2 || doc.Phases.ADEApplies != 2 || doc.Phases.Compiles != 2 {
		t.Fatalf("phase counters (hot request must not advance them): %+v", doc.Phases)
	}
	if doc.Telemetry.Requests != 2 || doc.Telemetry.Sites == 0 {
		t.Fatalf("telemetry aggregate: %+v", doc.Telemetry)
	}

	// Structured access log: one JSON line per request, with IDs.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 access-log lines, got %d:\n%s", len(lines), logBuf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatalf("access log line is not JSON: %v (%q)", err, lines[1])
	}
	if entry["id"] == "" || entry["path"] != "/v1/run" || entry["cacheHit"] != true {
		t.Fatalf("access log entry: %v", entry)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	r := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
}

// Load shedding: with 1 worker, no backlog, and a slow request
// holding the worker, a second request must be rejected 503 rather
// than queued without bound.
func TestOverloadSheds(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Backlog = -1 // no queue beyond the single worker
	})
	h := s.Handler()

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		// Retry: with no backlog the non-blocking submit can race the
		// worker goroutine's startup and shed; keep trying until the
		// holder job actually lands on the worker.
		for {
			_, err := s.pool.Do(context.Background(), func() any {
				close(started)
				<-release
				return nil
			})
			if err == nil {
				return
			}
		}
	}()
	<-started
	resp, status := postJSON(t, h, "/v1/run", Request{Program: divZeroProg})
	close(release)
	if status != http.StatusServiceUnavailable || resp.Error == nil || resp.Error.Code != CodeOverloaded {
		t.Fatalf("want 503 overloaded, got %d %+v", status, resp.Error)
	}
}

// Graceful shutdown drains the in-flight request.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()

	url := "http://" + ln.Addr().String()
	// Prime, then issue a slow request and shut down while in flight.
	if _, err := http.Post(url+"/healthz", "", nil); err == nil {
		// healthz is GET; ignore result — this just waits for accept.
	}
	body, _ := json.Marshal(Request{Program: histProg})
	if resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatalf("prime: %v", err)
	} else {
		resp.Body.Close()
	}

	slowBody, _ := json.Marshal(Request{Program: spinProg, MaxSteps: 30_000_000})
	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(slowBody))
		if err != nil {
			inflight <- result{0, err}
			return
		}
		defer resp.Body.Close()
		inflight <- result{resp.StatusCode, nil}
	}()
	time.Sleep(50 * time.Millisecond) // let the slow request reach a worker

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	got := <-inflight
	if got.err != nil {
		t.Fatalf("in-flight request was dropped during shutdown: %v", got.err)
	}
	// The spin program exhausts its step budget (429) or, on slow
	// builds (-race), the request deadline (408) first; either way the
	// point is it completed with a real response, not a connection
	// reset.
	if got.status != http.StatusTooManyRequests && got.status != http.StatusRequestTimeout {
		t.Fatalf("in-flight request status: %d", got.status)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("serve: %v", err)
	}
}

// Concurrent mixed traffic against one server under -race: shared
// bytecode across VMs, cloned IR across interpreters, one cache.
func TestConcurrentMixedTraffic(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 8; c.Backlog = 256 })
	h := s.Handler()
	progs := []string{histProg, strings.ReplaceAll(histProg, "97", "61"), growProg}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				req := Request{Program: progs[(g+i)%len(progs)], Engine: []string{"vm", "interp"}[i%2]}
				if req.Program == growProg {
					req.MaxMemBytes = 65_536 // deliberate budget trips in the mix
				}
				resp, status := postJSON(t, h, "/v1/run", req)
				switch {
				case resp.OK:
				case resp.Error != nil && resp.Error.Code == CodeMemBudget && status == http.StatusTooManyRequests:
				default:
					errs <- fmt.Sprintf("g%d i%d: %d %+v", g, i, status, resp.Error)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	cs := s.CacheStats()
	if cs.Hits == 0 {
		t.Fatal("concurrent identical programs should share cache entries")
	}
}

// Worker panic containment: a server-side panic in the pipeline is a
// 500 for that request and the daemon keeps serving.
func TestWorkerPanicContainment(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.pool.Do(context.Background(), func() any { panic("boom") }); err == nil {
		t.Fatal("want panic error")
	} else {
		var pe *PanicError
		if !asPanicError(err, &pe) || !strings.Contains(pe.Error(), "boom") {
			t.Fatalf("want PanicError, got %v", err)
		}
	}
	if s.pool.Panics() != 1 {
		t.Fatalf("panic counter: %d", s.pool.Panics())
	}
	resp, _ := postJSON(t, s.Handler(), "/v1/run", Request{Program: histProg})
	if !resp.OK {
		t.Fatalf("daemon must survive worker panics: %+v", resp.Error)
	}
}

func asPanicError(err error, target **PanicError) bool {
	pe, ok := err.(*PanicError)
	if ok {
		*target = pe
	}
	return ok
}

// LRU eviction end to end: a 2-entry cache serving 3 programs evicts
// deterministically and keeps counters consistent.
func TestCacheEvictionEndToEnd(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.CacheEntries = 2 })
	h := s.Handler()
	p1, p2, p3 := histProg, strings.ReplaceAll(histProg, "97", "89"), strings.ReplaceAll(histProg, "97", "83")
	for _, p := range []string{p1, p2, p3} {
		if resp, _ := postJSON(t, h, "/v1/run", Request{Program: p}); !resp.OK {
			t.Fatalf("run: %+v", resp.Error)
		}
	}
	cs := s.CacheStats()
	if cs.Entries != 2 || cs.Evictions != 1 {
		t.Fatalf("eviction counters: %+v", cs)
	}
	// p1 (LRU) was evicted: rerunning it is a miss; p3 stays hot.
	r1, _ := postJSON(t, h, "/v1/run", Request{Program: p1})
	if r1.Cache.Hit {
		t.Fatal("evicted entry cannot hit")
	}
	r3, _ := postJSON(t, h, "/v1/run", Request{Program: p3})
	if !r3.Cache.Hit {
		t.Fatal("recent entry must hit")
	}
}

type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestProfileSamplingAndEndpoint covers the live-profile loop: with
// ProfileSample=2 every second executed request is recorded (without
// leaking telemetry into the response), opt-in telemetry runs fold
// too, and GET /v1/profile serves a valid adeprofile/v1 document
// keyed by the artifact's pre-ADE program hash.
func TestProfileSamplingAndEndpoint(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.ProfileSample = 2 })
	h := s.Handler()

	getProfile := func() *adeprofile.Profile {
		t.Helper()
		r := httptest.NewRequest(http.MethodGet, "/v1/profile", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		p, err := adeprofile.Read(w.Body)
		if err != nil {
			t.Fatalf("profile endpoint: %v\n%s", err, w.Body.String())
		}
		return p
	}

	if p := getProfile(); len(p.Programs) != 0 {
		t.Fatalf("fresh daemon should serve an empty profile, got %d programs", len(p.Programs))
	}

	// Four executions at sample rate 2: runs 2 and 4 are recorded.
	var lastKey string
	for i := 0; i < 4; i++ {
		resp, code := postJSON(t, h, "/v1/run", Request{Program: histProg})
		if code != http.StatusOK || !resp.OK {
			t.Fatalf("run %d failed (%d): %+v", i, code, resp.Error)
		}
		if resp.Telemetry != nil {
			t.Fatalf("sampled telemetry leaked into response %d", i)
		}
		lastKey = resp.Cache.Key
	}
	p := getProfile()
	if len(p.Programs) != 1 {
		t.Fatalf("want 1 profiled program, got %d", len(p.Programs))
	}
	pp := p.Programs[0]
	if pp.Runs != 2 {
		t.Fatalf("sample rate 2 over 4 runs: want 2 recorded, got %d", pp.Runs)
	}
	if len(pp.Sites) == 0 {
		t.Fatal("recorded profile has no sites")
	}
	wantHash, _, _ := strings.Cut(lastKey, "|")
	if pp.Hash != wantHash {
		t.Fatalf("profile keyed by %s, want pre-ADE program hash %s", pp.Hash, wantHash)
	}

	// An opt-in telemetry run folds as well, and does echo telemetry.
	resp, _ := postJSON(t, h, "/v1/run", Request{Program: histProg, Telemetry: true})
	if resp.Telemetry == nil {
		t.Fatal("opt-in telemetry missing from response")
	}
	if got := getProfile().Programs[0].Runs; got != 3 {
		t.Fatalf("opt-in run did not fold: want 3 recorded runs, got %d", got)
	}

	// /v1/stats reports the recording counters.
	r := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var stats struct {
		Profile struct {
			RecordedRuns uint64 `json:"recordedRuns"`
			Programs     int    `json:"programs"`
		} `json:"profile"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Profile.RecordedRuns != 3 || stats.Profile.Programs != 1 {
		t.Fatalf("stats profile counters: %+v", stats.Profile)
	}
}
