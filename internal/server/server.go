// Package server implements adeserved: a long-running HTTP service
// that compiles .mir programs through the full ADE pipeline and
// executes them on either engine under per-request QoS budgets.
//
// The core of the subsystem is a content-addressed compiled-artifact
// cache (internal/server/cache) keyed by (ir.ProgramHash,
// core.Options.Fingerprint): the first request for a program pays
// parse + ADE + bytecode compile; every subsequent request for the
// same canonical program and options executes straight from the
// cached artifact. A raw-text alias index makes byte-identical repeat
// requests skip even the parse.
//
// Production posture (all from PR 5): requests run with step, memory,
// and deadline budgets clamped to server ceilings; ADE sub-passes run
// sandboxed with rollback; the parser is the fuzz-hardened untrusted
// boundary, and the request decoder added here is the second one. All
// work runs on a bounded worker pool with panic containment, and
// shutdown drains in-flight requests before exiting.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"memoir/internal/bench"
	"memoir/internal/bytecode"
	"memoir/internal/core"
	"memoir/internal/faults"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
	"memoir/internal/remarks"
	"memoir/internal/server/cache"
	"memoir/internal/server/store"
	"memoir/internal/telemetry"
	"memoir/internal/vm"
)

// Config configures the daemon. Zero values take the DefaultConfig
// defaults where noted.
type Config struct {
	// Addr is the listen address (ListenAndServe).
	Addr string

	// Workers is the worker-pool size; Backlog the extra queue depth
	// beyond the workers before load shedding.
	Workers int
	Backlog int

	// CacheEntries / CacheBytes bound the compiled-artifact cache.
	CacheEntries int
	CacheBytes   int64

	// MaxBodyBytes caps the raw request body; MaxProgramBytes caps
	// the .mir program inside it.
	MaxBodyBytes    int64
	MaxProgramBytes int

	// Per-request QoS: defaults apply when the request names none;
	// ceilings clamp whatever the request asks for.
	DefaultMaxSteps uint64
	CeilMaxSteps    uint64
	DefaultMaxMem   int64
	CeilMaxMem      int64
	DefaultTimeout  time.Duration
	CeilTimeout     time.Duration

	// Sandbox runs ADE sub-passes sandboxed with rollback (the
	// production posture; see core.Options.Sandbox).
	Sandbox bool

	// ProfileSample, when > 0, records telemetry on every Nth executed
	// request (in addition to opt-in telemetry requests) and folds it
	// into the live adeprofile served at GET /v1/profile. 0 disables
	// sampling; opt-in recordings still fold.
	ProfileSample int

	// StoreDir, when non-empty, enables the durable artifact/profile
	// store (internal/server/store) rooted there: compiled artifacts
	// persist across restarts, recovery re-verifies and warms the
	// cache, and corrupt entries are quarantined.
	StoreDir string
	// PersistProfile snapshots the live fleet profile into the store
	// (periodically and on drain) and merges it back on restart.
	// Requires StoreDir.
	PersistProfile bool
	// ProfileSnapshotEvery is the periodic profile-snapshot interval;
	// 0 takes the default, < 0 disables the ticker (on-drain snapshots
	// still happen).
	ProfileSnapshotEvery time.Duration
	// StoreFault names a deterministic I/O fault point (faults
	// write-fail:N / torn-write:N / corrupt-on-read:N) wired into the
	// store — chaos mode and tests only.
	StoreFault string

	// BreakerThreshold is the circuit breaker's consecutive-bad-run
	// trip count per program hash; 0 takes the default, < 0 disables
	// the breaker. BreakerBackoff is the first open interval, doubling
	// per re-trip up to BreakerMaxBackoff.
	BreakerThreshold  int
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration

	// AccessLog receives one structured JSON line per request; nil
	// disables access logging.
	AccessLog io.Writer
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		Addr:            ":8372",
		Workers:         4,
		Backlog:         64,
		CacheEntries:    256,
		CacheBytes:      64 << 20,
		MaxBodyBytes:    1 << 20,
		MaxProgramBytes: 512 << 10,
		DefaultMaxSteps: 10_000_000,
		CeilMaxSteps:    100_000_000,
		DefaultMaxMem:   64 << 20,
		CeilMaxMem:      256 << 20,
		DefaultTimeout:  5 * time.Second,
		CeilTimeout:     30 * time.Second,
		Sandbox:         true,

		ProfileSnapshotEvery: 30 * time.Second,
		BreakerThreshold:     3,
		BreakerBackoff:       time.Second,
		BreakerMaxBackoff:    60 * time.Second,
	}
}

// artifact is one cached compile result: the post-ADE IR (cloned per
// interpreter run; the cached copy is never executed directly) and
// the compiled bytecode (immutable, shared by concurrent VMs).
type artifact struct {
	key      cache.Key
	ir       *ir.Program
	bc       *bytecode.Prog
	degraded []string
	classes  int
	size     int64
}

// Server is the adeserved daemon.
type Server struct {
	cfg   Config
	cache *cache.Cache
	pool  *Pool
	http  *http.Server
	start time.Time

	phases   PhaseCounters
	hist     *latencyHist
	errCodes *errCodeCounters
	teleAgg  *teleAggregate
	prof     *liveProfile

	// Durability & self-protection (nil / disabled without StoreDir).
	store   *store.Store
	breaker *breaker
	// storeLoads counts artifacts re-materialized from disk after an
	// in-memory miss — deliberately separate from the phase counters,
	// which track pipeline work only (a disk load never re-runs ADE).
	storeLoads atomicCounter
	// recoveredArtifacts / recoveredQuarantined are the startup
	// recovery tallies (written once in New, before serving).
	recoveredArtifacts   int
	recoveredQuarantined int
	snapStop             chan struct{}
	snapDone             chan struct{}
	snapOnce             sync.Once

	reqTotal  atomicCounter
	reqOK     atomicCounter
	cacheRuns atomicCounter // runs served from a cached artifact
	engMu     sync.Mutex
	byEngine  map[string]uint64

	logMu sync.Mutex
	reqID atomicCounter
}

// New builds a Server from cfg (zero fields defaulted). With a
// StoreDir, it opens the durable store and runs crash recovery before
// any request can be served: every persisted artifact is re-verified
// (parse → IR verify → bytecode compile → bytecode verify) and either
// warms the in-memory cache or is quarantined.
func New(cfg Config) (*Server, error) {
	def := DefaultConfig()
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.Backlog == 0 {
		cfg.Backlog = def.Backlog
	}
	if cfg.Backlog < 0 {
		cfg.Backlog = 0 // explicit "no queue beyond the workers"
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = def.CacheEntries
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = def.CacheBytes
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}
	if cfg.MaxProgramBytes == 0 {
		cfg.MaxProgramBytes = def.MaxProgramBytes
	}
	if cfg.DefaultMaxSteps == 0 {
		cfg.DefaultMaxSteps = def.DefaultMaxSteps
	}
	if cfg.CeilMaxSteps == 0 {
		cfg.CeilMaxSteps = def.CeilMaxSteps
	}
	if cfg.DefaultMaxMem == 0 {
		cfg.DefaultMaxMem = def.DefaultMaxMem
	}
	if cfg.CeilMaxMem == 0 {
		cfg.CeilMaxMem = def.CeilMaxMem
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = def.DefaultTimeout
	}
	if cfg.CeilTimeout == 0 {
		cfg.CeilTimeout = def.CeilTimeout
	}
	if cfg.ProfileSnapshotEvery == 0 {
		cfg.ProfileSnapshotEvery = def.ProfileSnapshotEvery
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = def.BreakerThreshold
	}
	if cfg.BreakerBackoff == 0 {
		cfg.BreakerBackoff = def.BreakerBackoff
	}
	if cfg.BreakerMaxBackoff == 0 {
		cfg.BreakerMaxBackoff = def.BreakerMaxBackoff
	}
	s := &Server{
		cfg:      cfg,
		cache:    cache.New(cfg.CacheEntries, cfg.CacheBytes),
		pool:     NewPool(cfg.Workers, cfg.Backlog),
		hist:     newLatencyHist(),
		errCodes: newErrCodeCounters(),
		teleAgg:  &teleAggregate{},
		prof:     &liveProfile{},
		byEngine: map[string]uint64{},
		start:    time.Now(),
		breaker:  newBreaker(cfg.BreakerThreshold, cfg.BreakerBackoff, cfg.BreakerMaxBackoff),
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		if cfg.StoreFault != "" {
			pt, err := faults.ByName(cfg.StoreFault)
			if err != nil {
				return nil, fmt.Errorf("store fault: %w", err)
			}
			st.SetInjector(faults.NewInjector(pt))
		}
		s.store = st
		s.recoverStore()
		if cfg.PersistProfile {
			// Merge the last snapshot back in before any traffic: the
			// adeprofile merge is commutative, so restart order can't
			// change the document.
			if p, err := st.ReadProfile(); err == nil && p != nil {
				s.prof.seed(p)
			}
			if cfg.ProfileSnapshotEvery > 0 {
				s.snapStop = make(chan struct{})
				s.snapDone = make(chan struct{})
				go s.snapshotLoop(cfg.ProfileSnapshotEvery)
			}
		}
	}
	s.http = &http.Server{Addr: cfg.Addr, Handler: s.Handler()}
	return s, nil
}

// recoverStore replays the durable artifact store into the in-memory
// cache. Every entry is re-verified from scratch; a failure at any
// stage quarantines the file (never deletes it) and the daemon serves
// on without it.
func (s *Server) recoverStore() {
	entries, err := s.store.RecoverArtifacts()
	if err != nil {
		return
	}
	for _, e := range entries {
		art, err := materialize(e)
		if err != nil {
			s.store.QuarantineArtifact(e.ProgramHash, e.OptionsFP, err.Error())
			s.recoveredQuarantined++
			continue
		}
		s.cache.Put(art.key, art, art.size)
		for _, a := range e.Aliases {
			s.cache.Alias(a, art.key)
		}
		s.recoveredArtifacts++
	}
}

// materialize rebuilds an executable artifact from its persisted
// canonical text — parse, IR verify, bytecode compile, bytecode
// verify — without re-running ADE (the text is already post-ADE).
func materialize(e *store.Entry) (*artifact, error) {
	prog, err := parser.Parse(e.Program)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if err := ir.Verify(prog); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	bc, err := bytecode.Compile(prog)
	if err != nil {
		return nil, fmt.Errorf("bytecode: %w", err)
	}
	if err := bytecode.Verify(bc); err != nil {
		return nil, fmt.Errorf("bytecode verify: %w", err)
	}
	return &artifact{
		key:      cache.Key{ProgramHash: e.ProgramHash, OptionsFP: e.OptionsFP},
		ir:       prog,
		bc:       bc,
		degraded: e.Degraded,
		classes:  e.Classes,
		size:     artifactSize(e.Program, bc),
	}, nil
}

// snapshotLoop periodically persists the live profile until Shutdown.
func (s *Server) snapshotLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			close(s.snapDone)
			return
		case <-t.C:
			s.persistProfile()
		}
	}
}

// persistProfile writes the current merged profile to the store
// (best-effort: a failed write is counted in store stats and retried
// on the next tick or at drain).
func (s *Server) persistProfile() {
	if s.store == nil || !s.cfg.PersistProfile {
		return
	}
	if p := s.prof.current(); p != nil {
		s.store.WriteProfile(p)
	}
}

// Handler returns the daemon's routing handler (also used by tests
// and the in-process load harness via httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/profile", s.handleProfile)
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) { s.handleExec(w, r, false) })
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) { s.handleExec(w, r, true) })
	return mux
}

// ListenAndServe serves on cfg.Addr until Shutdown.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Serve serves on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error { return s.http.Serve(ln) }

// Shutdown drains gracefully: stop accepting, wait for in-flight
// requests (bounded by ctx), stop the worker pool, then take the
// final durable profile snapshot.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.pool.Close()
	if s.snapStop != nil {
		s.snapOnce.Do(func() {
			close(s.snapStop)
			<-s.snapDone
		})
	}
	s.persistProfile()
	return err
}

// CacheStats exposes the artifact-cache counters (for the CLI
// selftest summary).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// StoreStats exposes the durable-store counters; ok is false when no
// store is configured.
func (s *Server) StoreStats() (store.Stats, bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptimeMs\":%d}\n", time.Since(s.start).Milliseconds())
}

// handleProfile serves the live adeprofile/v1 document merged from
// every recorded run since startup. The output is the canonical
// serialization: it feeds straight into `adec -profile` or
// `adereport -profile`.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.prof.document())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.engMu.Lock()
	byEngine := make(map[string]uint64, len(s.byEngine))
	for k, v := range s.byEngine {
		byEngine[k] = v
	}
	s.engMu.Unlock()
	cs := s.cache.Stats()
	ps := s.prof.snapshot()
	doc := map[string]any{
		"uptimeMs": time.Since(s.start).Milliseconds(),
		"requests": map[string]any{
			"total":           s.reqTotal.Load(),
			"ok":              s.reqOK.Load(),
			"byEngine":        byEngine,
			"servedFromCache": s.cacheRuns.Load(),
		},
		"errors": s.errCodes.snapshot(),
		"cache": map[string]any{
			"hits":      cs.Hits,
			"misses":    cs.Misses,
			"evictions": cs.Evictions,
			"rejected":  cs.Rejected,
			"entries":   cs.Entries,
			"bytes":     cs.Bytes,
			"hitRatio":  cs.HitRatio(),
		},
		"phases": s.phases.snapshot(),
		"latency": map[string]any{
			"count":  s.hist.count,
			"meanMs": s.hist.meanMs(),
			"p50Ms":  float64(s.hist.quantile(0.50).Microseconds()) / 1000,
			"p90Ms":  float64(s.hist.quantile(0.90).Microseconds()) / 1000,
			"p99Ms":  float64(s.hist.quantile(0.99).Microseconds()) / 1000,
			"note":   "percentiles are histogram-bucket upper bounds",
		},
		"pool": map[string]any{
			"workers": s.cfg.Workers,
			"backlog": s.cfg.Backlog,
			"panics":  s.pool.Panics(),
		},
		"telemetry": s.teleAgg.snapshot(),
		"profile":   ps,
		// profileRecovered is surfaced top-level too: the chaos harness
		// (and CI) greps for it to tell a warm restart from a cold one.
		"profileRecovered": ps.Recovered,
		"breaker":          s.breaker.snapshot(),
	}
	if s.store != nil {
		ss := s.store.Stats()
		doc["store"] = map[string]any{
			"dir":                  s.store.Dir(),
			"writes":               ss.Writes,
			"writeErrors":          ss.WriteErrors,
			"fsyncs":               ss.Fsyncs,
			"loads":                ss.Loads,
			"loadErrors":           ss.LoadErrors,
			"quarantined":          ss.Quarantined,
			"diskLoads":            s.storeLoads.Load(),
			"recoveredArtifacts":   s.recoveredArtifacts,
			"recoveredQuarantined": s.recoveredQuarantined,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// handleExec decodes, submits the work to the pool, and encodes the
// reply; runIt distinguishes /v1/run from /v1/compile.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request, runIt bool) {
	started := time.Now()
	id := fmt.Sprintf("r-%06d", s.reqID.Load())
	s.reqID.Add(1)
	s.reqTotal.Add(1)

	if r.Method != http.MethodPost {
		resp := &Response{ID: id, Error: apiErr(CodeBadRequest, http.StatusMethodNotAllowed, "POST required")}
		s.writeResponse(w, r, resp, started, "", false)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		code, status := CodeBadRequest, http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code, status = CodeBodyTooLarge, http.StatusRequestEntityTooLarge
		}
		resp := &Response{ID: id, Error: apiErr(code, status, err.Error())}
		s.writeResponse(w, r, resp, started, "", false)
		return
	}
	req, aerr := DecodeRequest(body, r.Header.Get("Content-Type"), r.URL.Query(), s.cfg.MaxProgramBytes)
	if aerr != nil {
		s.writeResponse(w, r, &Response{ID: id, Error: aerr}, started, "", false)
		return
	}

	v, err := s.pool.Do(r.Context(), func() any { return s.process(req, runIt, id) })
	var resp *Response
	switch {
	case err == nil:
		resp = v.(*Response)
	case errors.Is(err, ErrOverloaded):
		resp = &Response{ID: id, Error: apiErr(CodeOverloaded, http.StatusServiceUnavailable, "worker pool saturated; retry")}
	case errors.Is(err, ErrPoolClosed):
		resp = &Response{ID: id, Error: apiErr(CodeShutdown, http.StatusServiceUnavailable, "daemon is shutting down")}
	default:
		var pe *PanicError
		if errors.As(err, &pe) {
			resp = &Response{ID: id, Error: apiErr(CodePanic, http.StatusInternalServerError, pe.Error())}
		} else {
			// Caller context expired while queued or running; the
			// client is likely gone, but answer anyway.
			resp = &Response{ID: id, Error: apiErr(CodeDeadline, http.StatusRequestTimeout, err.Error())}
		}
	}
	cacheHit := resp.Cache != nil && resp.Cache.Hit
	engine := resp.Engine // resolved name; falls back to the raw request field
	if engine == "" {
		engine = req.Engine
	}
	s.writeResponse(w, r, resp, started, engine, cacheHit)
}

// process runs the full pipeline for one request on a pool worker.
func (s *Server) process(req *Request, runIt bool, id string) *Response {
	resp := &Response{ID: id}
	art, phases, hit, disk, aerr := s.compileThroughCache(req)
	resp.Phases = &phases
	if aerr != nil {
		resp.Error = aerr
		return resp
	}
	resp.Cache = &CacheInfo{Hit: hit, Key: art.key.ProgramHash + "|" + art.key.OptionsFP, Disk: disk}
	resp.Degraded = art.degraded
	resp.Classes = art.classes
	if !runIt {
		resp.OK = true
		return resp
	}
	// The circuit breaker guards execution only, and deliberately
	// ignores fault-injected requests: fault injection is an opt-in
	// test surface, not program behavior.
	guard := req.Fault == ""
	if guard {
		if ok, retry := s.breaker.allow(art.key.ProgramHash); !ok {
			ms := retry.Milliseconds()
			if ms <= 0 {
				ms = 1
			}
			e := apiErr(CodeQuarantined, http.StatusUnprocessableEntity,
				"program quarantined after repeated crashes or budget blowouts; retry later")
			e.RetryAfterMs = ms
			resp.Error = e
			return resp
		}
	}
	s.executeInto(resp, art, req, hit)
	if guard {
		s.breaker.record(art.key.ProgramHash, breakerBad(resp.Error))
	}
	return resp
}

// breakerBad classifies an execution outcome for the circuit breaker:
// engine-contained panics and budget blowouts count against the
// program; success and plain guest runtime errors (div-zero and
// friends, which cost almost nothing to serve) do not.
func breakerBad(e *APIError) bool {
	if e == nil {
		return false
	}
	switch e.Code {
	case CodeRuntimePanic, CodeStepBudget, CodeMemBudget, CodeDeadline:
		return true
	}
	return false
}

// compileThroughCache obtains the compiled artifact for a request:
// from the raw-text alias (no parse), from the canonical key (parse
// only), from the durable store (parse + deterministic re-compile of
// the persisted post-ADE text — never re-running ADE), or by running
// the full pipeline. Fault-injected and no-cache requests bypass the
// cache entirely — injectors are single-run state that must never
// leak into a shared artifact. The disk return flag marks store hits
// (CacheInfo.Disk).
func (s *Server) compileThroughCache(req *Request) (*artifact, PhaseInfo, bool, bool, *APIError) {
	var phases PhaseInfo
	fp := req.fingerprint(s.cfg.Sandbox)
	bypass := req.Fault != "" || req.NoCache

	rawSum := sha256.Sum256([]byte(req.Program))
	rawAlias := hex.EncodeToString(rawSum[:]) + "|" + fp
	if !bypass {
		if _, v, ok := s.cache.Resolve(rawAlias); ok {
			return v.(*artifact), phases, true, false, nil
		}
	}

	phases.Parsed = true
	s.phases.Parses.Add(1)
	prog, err := parser.Parse(req.Program)
	if err != nil {
		return nil, phases, false, false, apiErr(CodeParseError, http.StatusBadRequest, err.Error())
	}
	if err := ir.Verify(prog); err != nil {
		return nil, phases, false, false, apiErr(CodeVerifyError, http.StatusBadRequest, err.Error())
	}
	key := cache.Key{ProgramHash: ir.ProgramHash(prog), OptionsFP: fp}
	if !bypass {
		if v, ok := s.cache.Get(key); ok {
			s.cache.Alias(rawAlias, key)
			return v.(*artifact), phases, true, false, nil
		}
		// In-memory miss (cold start or LRU eviction): try the durable
		// store before paying for ADE again. The phase counters stay
		// honest — ADEApplies and Compiles track pipeline work, and a
		// disk load does neither; it counts under storeLoads instead.
		if s.store != nil {
			if e, serr := s.store.GetArtifact(key.ProgramHash, fp); serr == nil && e != nil {
				if art, merr := materialize(e); merr == nil {
					s.storeLoads.Add(1)
					s.cache.Put(key, art, art.size)
					s.cache.Alias(rawAlias, key)
					return art, phases, true, true, nil
				} else {
					// Checksum-clean but semantically dead (e.g. written
					// by a newer compiler): quarantine and recompile.
					s.store.QuarantineArtifact(key.ProgramHash, fp, merr.Error())
				}
			}
		}
	}

	art := &artifact{key: key}
	var em *remarks.Emitter
	if req.wantADE() {
		phases.ADE = true
		s.phases.ADEApplies.Add(1)
		opts := req.coreOptions(s.cfg.Sandbox)
		if inj := requestInjector(req, faults.PassPanic); inj != nil {
			opts.Faults = inj
		}
		if s.store != nil && !bypass {
			// Remarks are only collected when the artifact will be
			// persisted: the digest in the store entry fingerprints what
			// the pipeline said about this compile.
			em = remarks.NewEmitter()
			opts.Remarks = em
		}
		rep, err := core.Apply(prog, opts)
		if err != nil {
			return nil, phases, false, false, apiErr(CodeADEError, http.StatusUnprocessableEntity, err.Error())
		}
		if err := ir.Verify(prog); err != nil {
			// A verify failure after ADE is a compiler bug, not a
			// client error.
			return nil, phases, false, false, apiErr(CodeInternal, http.StatusInternalServerError, "verify after ADE: "+err.Error())
		}
		art.degraded = rep.Degraded
		art.classes = len(rep.Classes)
	}
	phases.Compiled = true
	s.phases.Compiles.Add(1)
	bc, err := bytecode.Compile(prog)
	if err != nil {
		return nil, phases, false, false, apiErr(CodeInternal, http.StatusInternalServerError, "bytecode: "+err.Error())
	}
	// Never cache an artifact the verifier rejects: a bad compile dies
	// here, once, instead of being replayed from the cache on every
	// subsequent request.
	if err := bytecode.Verify(bc); err != nil {
		return nil, phases, false, false, apiErr(CodeInternal, http.StatusInternalServerError, err.Error())
	}
	art.ir = prog
	art.bc = bc
	art.size = artifactSize(req.Program, bc)
	if !bypass {
		s.cache.Put(key, art, art.size)
		s.cache.Alias(rawAlias, key)
		if s.store != nil {
			var digest string
			if em != nil {
				sum := sha256.Sum256([]byte(remarks.Text(em.Remarks)))
				digest = hex.EncodeToString(sum[:])
			}
			// Best-effort durability: a failed write is counted in store
			// stats; the in-memory artifact still serves this process.
			s.store.PutArtifact(&store.Entry{
				ProgramHash:   key.ProgramHash,
				OptionsFP:     fp,
				ADE:           req.wantADE(),
				Program:       ir.Print(prog),
				Degraded:      art.degraded,
				Classes:       art.classes,
				RemarksDigest: digest,
				Aliases:       []string{rawAlias},
				Size:          art.size,
			})
		}
	}
	return art, phases, false, false, nil
}

// artifactSize models the retained footprint of one cache entry:
// the canonical program text plus the compiled code and constant
// pools. The constants are approximate but stable, which is all the
// byte bound needs.
func artifactSize(program string, bc *bytecode.Prog) int64 {
	size := int64(len(program))
	for _, f := range bc.Funcs {
		size += int64(len(f.Code))*32 + int64(len(f.Consts))*16 + int64(len(f.Name))
	}
	for _, m := range bc.Msgs {
		size += int64(len(m))
	}
	return size
}

// requestInjector builds the per-request fault injector when the
// named point matches the wanted kind class (compile-time pass
// panics vs runtime faults), nil otherwise.
func requestInjector(req *Request, want faults.Kind) *faults.Injector {
	if req.Fault == "" {
		return nil
	}
	pt, err := faults.ByName(req.Fault)
	if err != nil {
		return nil // validated earlier; unreachable
	}
	isCompile := pt.Kind == faults.PassPanic
	if (want == faults.PassPanic) != isCompile {
		return nil
	}
	return faults.NewInjector(pt)
}

// executeInto runs the artifact on the requested engine and fills the
// run-side response fields.
func (s *Server) executeInto(resp *Response, art *artifact, req *Request, fromCache bool) {
	eng, err := bench.ParseEngine(req.Engine)
	if err != nil {
		resp.Error = apiErr(CodeBadRequest, http.StatusBadRequest, err.Error())
		return
	}
	resp.Engine = eng.String()
	if art.bc.ByName == nil || art.ir.Func(req.Entry) == nil {
		resp.Error = apiErr(CodeUnknownEntry, http.StatusBadRequest, "no function @"+req.Entry)
		return
	}

	steps, mem, timeout := req.budgets(s.cfg)
	iopts := interp.DefaultOptions()
	iopts.MaxSteps = steps
	iopts.MaxBytes = mem
	var cancel context.CancelFunc
	if timeout > 0 {
		var ctx context.Context
		ctx, cancel = context.WithTimeout(context.Background(), timeout)
		defer cancel()
		iopts.Context = ctx
	}
	if inj := requestInjector(req, faults.AllocFail); inj != nil {
		iopts.Faults = inj
	}
	var rec *telemetry.Recorder
	if req.Telemetry || s.prof.sampleNow(s.cfg.ProfileSample) {
		rec = telemetry.NewRecorder()
		iopts.Telemetry = rec
	}

	var m machine
	switch eng {
	case bench.EngineVM:
		// The compiled bytecode is immutable: concurrent VMs share it.
		m = vmMachine{vm.New(art.bc, iopts)}
	default:
		// The interpreter finalizes slots lazily (a write to the IR),
		// so concurrent runs get private clones of the cached program.
		m = interpMachine{interp.New(ir.CloneProgram(art.ir), iopts)}
	}

	args := make([]interp.Val, len(req.Args))
	for i, a := range req.Args {
		args[i] = interp.IntV(a)
	}
	start := time.Now()
	ret, runErr := m.Run(req.Entry, args...)
	resp.WallMs = float64(time.Since(start).Microseconds()) / 1000
	m.FinalizeMem()
	st := m.Stats()
	resp.Stats = &RunStats{Steps: st.Steps, Sparse: st.Sparse, Dense: st.Dense, PeakBytes: st.PeakBytes}
	resp.Output = &OutputSum{Count: st.EmitCount, Checksum: st.EmitSum}
	if rec != nil {
		t := rec.Result()
		s.teleAgg.fold(t)
		if req.Telemetry {
			if raw, err := json.Marshal(t); err == nil {
				resp.Telemetry = raw
			}
		}
		// Only clean, fault-free runs feed the live profile: a budget-
		// interrupted or fault-injected run's counts would distort the
		// aggregates a later compile consumes.
		if runErr == nil && req.Fault == "" {
			s.prof.fold(art.key.ProgramHash, t)
		}
	}
	if fromCache {
		s.cacheRuns.Add(1)
	}
	s.engMu.Lock()
	s.byEngine[eng.String()]++
	s.engMu.Unlock()
	if runErr != nil {
		resp.Error = MapRunError(runErr)
		resp.Partial = true
		return
	}
	resp.OK = true
	resp.Result = ret.String()
}

// writeResponse encodes the reply, tallies metrics, and writes the
// structured access-log line.
func (s *Server) writeResponse(w http.ResponseWriter, r *http.Request, resp *Response, started time.Time, engine string, cacheHit bool) {
	status := http.StatusOK
	code := ""
	if resp.Error != nil {
		status = resp.Error.Status
		code = resp.Error.Code
		s.errCodes.inc(code)
	} else {
		s.reqOK.Add(1)
	}
	dur := time.Since(started)
	s.hist.observe(dur)

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", resp.ID)
	if resp.Error != nil && resp.Error.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((resp.Error.RetryAfterMs+999)/1000, 10))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)

	if s.cfg.AccessLog != nil {
		line, _ := json.Marshal(map[string]any{
			"ts":       time.Now().UTC().Format(time.RFC3339Nano),
			"id":       resp.ID,
			"remote":   r.RemoteAddr,
			"method":   r.Method,
			"path":     r.URL.Path,
			"status":   status,
			"code":     code,
			"engine":   engine,
			"cacheHit": cacheHit,
			"ms":       float64(dur.Microseconds()) / 1000,
		})
		s.logMu.Lock()
		s.cfg.AccessLog.Write(append(line, '\n'))
		s.logMu.Unlock()
	}
}

// machine is the slice of an engine the server needs. The adapters
// below avoid bench.NewMachine, which would recompile the bytecode on
// every request — the entire point of the cache is not doing that.
type machine interface {
	Run(name string, args ...interp.Val) (interp.Val, error)
	FinalizeMem()
	Stats() *interp.Stats
}

type interpMachine struct{ *interp.Interp }

func (m interpMachine) Stats() *interp.Stats { return m.Interp.Stats }

type vmMachine struct{ *vm.VM }

func (m vmMachine) Stats() *interp.Stats { return m.VM.Stats }
