package server

import (
	"bytes"
	"sync"
	"sync/atomic"

	"memoir/internal/adeprofile"
	"memoir/internal/telemetry"
)

// liveProfile is the daemon's in-memory adeprofile/v1 document: every
// recorded run — opt-in telemetry requests, plus every Nth executed
// request when Config.ProfileSample is set — folds in under the
// program's pre-ADE hash (the artifact cache key's program half), and
// GET /v1/profile serves the canonical merged document. The fold is
// the same commutative merge the offline shard tooling uses, so a
// profile scraped from a daemon is byte-compatible with one written
// by memoir-run or adebench.
type liveProfile struct {
	tick atomic.Uint64
	mu   sync.Mutex
	prof *adeprofile.Profile
	runs uint64
	// recovered marks a profile seeded from a durable-store snapshot
	// at startup; surfaced as profileRecovered in /v1/stats so the
	// chaos harness (and operators) can tell a warm restart apart.
	recovered bool
}

// seed merges a recovered snapshot (read back from the durable store
// at startup) into the live profile, before any traffic is served.
func (l *liveProfile) seed(p *adeprofile.Profile) {
	if p == nil || len(p.Programs) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prof == nil {
		l.prof = adeprofile.New()
	}
	l.prof.Merge(p)
	l.recovered = true
}

// current returns a merged copy of the live profile for snapshotting
// to the durable store, or nil when nothing was recorded.
func (l *liveProfile) current() *adeprofile.Profile {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prof == nil {
		return nil
	}
	out := adeprofile.New()
	out.Merge(l.prof)
	return out
}

// sampleNow decides whether the current request is a profiling sample:
// every nth executed request, counted across all programs. n <= 0
// disables sampling.
func (l *liveProfile) sampleNow(n int) bool {
	return n > 0 && l.tick.Add(1)%uint64(n) == 0
}

// fold merges one recorded run into the live profile.
func (l *liveProfile) fold(hash string, t *telemetry.Telemetry) {
	p := adeprofile.FromTelemetry(hash, "", t)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.prof == nil {
		l.prof = adeprofile.New()
	}
	l.prof.Merge(p)
	l.runs++
}

// document returns the canonical serialized profile (an empty but
// valid document before any run was recorded).
func (l *liveProfile) document() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.prof
	if p == nil {
		p = adeprofile.New()
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		return []byte("{}\n")
	}
	return buf.Bytes()
}

type profileSnapshot struct {
	RecordedRuns uint64 `json:"recordedRuns"`
	Programs     int    `json:"programs"`
	Fingerprint  string `json:"fingerprint,omitempty"`
	Recovered    bool   `json:"recovered,omitempty"`
}

func (l *liveProfile) snapshot() profileSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := profileSnapshot{RecordedRuns: l.runs, Recovered: l.recovered}
	if l.prof != nil {
		out.Programs = len(l.prof.Programs)
		out.Fingerprint = l.prof.Fingerprint()
	}
	return out
}
