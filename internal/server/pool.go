package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// Pool is a bounded worker pool with panic containment. All request
// work (parse, ADE, compile, execute) runs on a fixed set of workers;
// the HTTP handlers only decode, submit, and encode. A full queue
// sheds load (503 overloaded) instead of queueing without bound, and
// a panicking job takes down neither its worker nor the daemon.
type Pool struct {
	jobs chan poolJob
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// Panics counts jobs that panicked (contained); exposed by
	// /v1/stats.
	panics atomicCounter
}

type poolJob struct {
	fn    func() any
	reply chan poolResult
}

type poolResult struct {
	value any
	err   error
}

// ErrOverloaded is returned by Do when the queue is full.
var ErrOverloaded = errors.New("worker pool overloaded")

// ErrPoolClosed is returned by Do after Close.
var ErrPoolClosed = errors.New("worker pool shutting down")

// PanicError wraps a recovered job panic; the handler maps it to
// 500 internal-panic.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("worker panic: %v", e.Value) }

// NewPool starts `workers` goroutines consuming a queue of depth
// `backlog`. An idle worker blocks on the channel receive, so a
// zero-backlog pool still accepts one job per idle worker — backlog
// only bounds jobs queued beyond the running ones.
func NewPool(workers, backlog int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if backlog < 0 {
		backlog = 0
	}
	p := &Pool{jobs: make(chan poolJob, backlog)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		job.reply <- p.runContained(job.fn)
	}
}

func (p *Pool) runContained(fn func() any) (res poolResult) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			res = poolResult{err: &PanicError{Value: r, Stack: string(debug.Stack())}}
		}
	}()
	return poolResult{value: fn()}
}

// Do submits fn and waits for its result. It fails fast with
// ErrOverloaded when the queue is full, ErrPoolClosed after Close,
// and ctx.Err() if the caller gives up while queued. A *PanicError is
// returned when fn panicked.
func (p *Pool) Do(ctx context.Context, fn func() any) (any, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	// reply is buffered so a worker never blocks on a caller that
	// abandoned the wait.
	job := poolJob{fn: fn, reply: make(chan poolResult, 1)}
	select {
	case p.jobs <- job:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return nil, ErrOverloaded
	}
	select {
	case res := <-job.reply:
		return res.value, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops accepting new jobs, drains the queue, and waits for all
// workers to finish their in-flight jobs.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// Panics returns the number of contained job panics so far.
func (p *Pool) Panics() uint64 { return p.panics.Load() }
