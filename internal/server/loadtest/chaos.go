// Chaos mode: the crash-safety counterpart to the throughput phases.
// Where Run measures how fast the daemon serves, RunChaos checks that
// it never serves *wrong* under injected store faults and hard
// restarts.
//
// The harness precomputes ground-truth outputs for every program
// variant on a pristine, store-less server, then drives a sequence of
// epochs against a shared durable store directory. Each epoch builds
// a fresh server over that store (startup recovery included), fires a
// slice of the request budget at it with an injected I/O fault
// (write-fail / torn-write / corrupt-on-read), and then either drains
// cleanly or hard-abandons the server with no shutdown at all. A
// hard abandon never flushes anything — combined with torn-write
// faults it is the in-process stand-in for kill -9 landing between a
// write and its fsync (the real kill -9 leg lives in CI).
//
// The invariant is absolute: every 2xx response must match the
// precomputed output byte for byte, and every error must carry a
// known structured code. Corruption may cost a recompile; it must
// never change an answer.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"

	"memoir/internal/server"
)

// ChaosConfig parameterizes a chaos run.
type ChaosConfig struct {
	Requests    int    // total requests across all epochs (default 500)
	Concurrency int    // parallel clients per epoch (default 8)
	Engine      string // "vm" (default) or "interp"
	Programs    int    // distinct program variants (default 12)
	StoreDir    string // durable store root, shared by every epoch (required)
	// Faults is the per-epoch store fault plan (internal/faults I/O
	// point names; "" = no fault that epoch). Defaults to one epoch
	// per I/O fault kind bracketed by clean epochs. Epoch count =
	// len(Faults).
	Faults []string
}

// ChaosReport is the outcome of a chaos run.
type ChaosReport struct {
	Epochs   int
	Restarts int // server incarnations beyond the first
	Requests int
	OK       int // 2xx responses, all verified byte-identical
	Wrong    int // THE number: answers that contradicted ground truth
	Clean    int // structured errors with known codes (load shedding etc.)
	// RecoveredHits counts post-restart responses served without any
	// pipeline phase running — proof that recovery actually warmed
	// the cache rather than silently recompiling.
	RecoveredHits int
	// Quarantined is the store's final quarantine tally (corrupt
	// files renamed aside, never deleted).
	Quarantined uint64
}

func (c *ChaosConfig) fill() {
	if c.Requests <= 0 {
		c.Requests = 500
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Engine == "" {
		c.Engine = "vm"
	}
	if c.Programs <= 0 {
		c.Programs = 12
	}
	if len(c.Faults) == 0 {
		c.Faults = []string{"", "torn-write:1", "corrupt-on-read:1", "write-fail:1", ""}
	}
}

// expected is the ground truth for one program variant.
type expected struct {
	result   string
	count    uint64
	checksum uint64
}

// cleanCodes are the error codes a chaos run may legitimately see:
// load shedding and drain rejections. Anything else — and any other
// code paired with a wrong body — is a harness failure.
var cleanCodes = map[string]bool{
	"overloaded":    true,
	"shutting-down": true,
	"quarantined":   true,
}

// RunChaos executes the chaos schedule and returns the report. The
// caller owns asserting Wrong == 0 (and typically RecoveredHits > 0).
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg.fill()
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("chaos: StoreDir is required")
	}

	// Ground truth from a pristine, store-less server: one run per
	// variant, no faults anywhere. The extra len(Faults) variants are
	// the per-epoch fresh programs (see runChaosEpoch).
	truth, err := groundTruth(cfg, cfg.Programs+len(cfg.Faults))
	if err != nil {
		return nil, err
	}

	rep := &ChaosReport{Epochs: len(cfg.Faults)}
	perEpoch := cfg.Requests / len(cfg.Faults)
	if perEpoch < 1 {
		perEpoch = 1
	}
	for epoch, fault := range cfg.Faults {
		scfg := server.DefaultConfig()
		scfg.Workers = cfg.Concurrency
		scfg.Backlog = 4 * cfg.Concurrency
		// A cache smaller than the variant set forces mid-epoch
		// evictions, so disk hot-loads happen under fire, not just at
		// recovery.
		scfg.CacheEntries = cfg.Programs/2 + 1
		scfg.StoreDir = cfg.StoreDir
		scfg.StoreFault = fault
		scfg.PersistProfile = true
		scfg.ProfileSnapshotEvery = -1 // no ticker: abandoned epochs must not leak writers
		s, err := server.New(scfg)
		if err != nil {
			return nil, fmt.Errorf("chaos: epoch %d: %w", epoch, err)
		}
		if epoch > 0 {
			rep.Restarts++
		}
		runChaosEpoch(s, cfg, truth, perEpoch, epoch, rep)
		// Stats are per-incarnation; the report accumulates across the
		// whole run.
		if ss, ok := s.StoreStats(); ok {
			rep.Quarantined += ss.Quarantined
		}
		if epoch%2 == 0 {
			// Clean drain: flushes the profile snapshot and stops the
			// pool. Odd epochs are hard-abandoned instead — the server
			// is simply dropped, nothing is flushed or stopped.
			s.Shutdown(context.Background())
		}
	}
	return rep, nil
}

// runChaosEpoch fires perEpoch requests at s and verifies every
// answer against ground truth.
func runChaosEpoch(s *server.Server, cfg ChaosConfig, truth []expected, perEpoch, epoch int, rep *ChaosReport) {
	h := s.Handler()
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Mostly the shared variant set (already persisted by
				// earlier epochs, so restarts exercise recovery), but a
				// sprinkle of this epoch's fresh variant forces at least
				// one real compile + store write per epoch — the write
				// faults need a write to sabotage.
				v := i % cfg.Programs
				if i%25 == 0 {
					v = cfg.Programs + epoch
				}
				resp, err := chaosPost(h, request{Program: cfg.variantOf(v), Engine: cfg.Engine})
				mu.Lock()
				rep.Requests++
				switch {
				case err != nil:
					// Transport-level failure or an unparseable body:
					// never acceptable, whatever the status was.
					rep.Wrong++
				case resp.OK:
					want := truth[v]
					if resp.Result != want.result || resp.Output == nil ||
						resp.Output.Count != want.count || resp.Output.Checksum != want.checksum {
						rep.Wrong++
					} else {
						rep.OK++
						if epoch > 0 && resp.Phases != nil &&
							!resp.Phases.Parsed && !resp.Phases.ADE && !resp.Phases.Compiled {
							rep.RecoveredHits++
						}
					}
				case resp.Error != nil && cleanCodes[resp.Error.Code]:
					rep.Clean++
				default:
					rep.Wrong++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < perEpoch; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// groundTruth runs the first n variants once on a fault-free,
// store-less server and records the expected result and output
// summary for each.
func groundTruth(cfg ChaosConfig, n int) ([]expected, error) {
	scfg := server.DefaultConfig()
	scfg.Workers = 2
	s, err := server.New(scfg)
	if err != nil {
		return nil, err
	}
	defer s.Shutdown(context.Background())
	h := s.Handler()
	out := make([]expected, n)
	for v := 0; v < n; v++ {
		resp, err := chaosPost(h, request{Program: cfg.variantOf(v), Engine: cfg.Engine})
		if err != nil {
			return nil, fmt.Errorf("chaos: ground truth variant %d: %w", v, err)
		}
		if !resp.OK || resp.Output == nil {
			return nil, fmt.Errorf("chaos: ground truth variant %d failed", v)
		}
		out[v] = expected{result: resp.Result, count: resp.Output.Count, checksum: resp.Output.Checksum}
	}
	return out, nil
}

// chaosPost is like post but never folds an HTTP status into a Go
// error: chaos classifies every structured response itself, and a 503
// with a clean code is a legitimate answer, not a transport failure.
func chaosPost(h http.Handler, req request) (*response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	raw, err := io.ReadAll(w.Result().Body)
	if err != nil {
		return nil, err
	}
	var resp response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("bad response JSON (http %d): %w", w.Code, err)
	}
	return &resp, nil
}

// variantOf mints the v-th program variant from the default template
// (chaos always uses the histogram kernel: its emit stream gives the
// output checksum real discriminating power).
func (c *ChaosConfig) variantOf(v int) string {
	lc := Config{Program: DefaultProgram}
	return lc.variant(v)
}

// FormatChaos renders the chaos report.
func FormatChaos(r *ChaosReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d epochs (%d restarts), %d requests\n", r.Epochs, r.Restarts, r.Requests)
	fmt.Fprintf(&b, "  verified OK:    %d (every byte checked against ground truth)\n", r.OK)
	fmt.Fprintf(&b, "  wrong answers:  %d\n", r.Wrong)
	fmt.Fprintf(&b, "  clean errors:   %d\n", r.Clean)
	fmt.Fprintf(&b, "  recovered hits: %d (served post-restart with no pipeline phase)\n", r.RecoveredHits)
	fmt.Fprintf(&b, "  quarantined:    %d store files renamed aside\n", r.Quarantined)
	return b.String()
}
