package loadtest_test

import (
	"path/filepath"
	"testing"

	"memoir/internal/server/loadtest"
)

// The chaos invariant end-to-end, scaled down for the unit tier (the
// CLI selftest runs the full ≥500-request schedule): injected store
// faults and hard restarts must cost at most recompiles — never a
// wrong answer.
func TestChaosZeroWrongAnswers(t *testing.T) {
	dir := t.TempDir()
	rep, err := loadtest.RunChaos(loadtest.ChaosConfig{
		Requests:    150,
		Concurrency: 4,
		Programs:    6,
		StoreDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wrong != 0 {
		t.Fatalf("%d wrong answers:\n%s", rep.Wrong, loadtest.FormatChaos(rep))
	}
	if rep.OK == 0 || rep.Requests < 150 {
		t.Fatalf("harness did no verified work: %+v", rep)
	}
	if rep.Restarts != 4 {
		t.Fatalf("default schedule is 5 epochs / 4 restarts, got %d", rep.Restarts)
	}
	if rep.RecoveredHits == 0 {
		t.Fatalf("no post-restart request was served from recovered state:\n%s", loadtest.FormatChaos(rep))
	}
	// The fault plan includes torn-write and corrupt-on-read: at least
	// one file must have been quarantined, and quarantine preserves
	// the bytes on disk.
	if rep.Quarantined == 0 {
		t.Fatalf("injected corruption never quarantined anything:\n%s", loadtest.FormatChaos(rep))
	}
	q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if len(q) == 0 {
		t.Fatal("quarantine directory empty — corrupt files were deleted, not preserved")
	}
}

func TestChaosRequiresStoreDir(t *testing.T) {
	if _, err := loadtest.RunChaos(loadtest.ChaosConfig{}); err == nil {
		t.Fatal("RunChaos without StoreDir must fail")
	}
}
