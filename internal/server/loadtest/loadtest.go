// Package loadtest is the in-process load harness for adeserved. It
// drives an http.Handler (no sockets: the numbers isolate server +
// pipeline cost from the network) through three phases and reports
// exact client-side latency percentiles:
//
//	cold  — every request bypasses the artifact cache (noCache), so
//	        each one pays parse + ADE + compile + run.
//	hot   — identical requests after one priming call; every request
//	        after the first is served from the compiled-artifact
//	        cache via the raw-text alias (no parse at all).
//	mixed — alternating cached program and fresh variants.
//
// The hot/cold ratio is the headline number for the content-addressed
// cache: it is the compile pipeline cost amortized away per request.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultProgram is the histogram kernel used when Config.Program is
// empty: a sparse-keyed map build + probe loop that ADE enumerates,
// so the compile side does real optimization work. The %MOD% marker
// is replaced to mint distinct-but-equal-cost program variants.
const DefaultProgram = `fn u64 @main(): exported
  %input := new Seq<u64>()
  do:
    %i := phi(0, %i1)
    %in0 := phi(%input, %in1)
    %h := mul(%i, 2654435761)
    %v := rem(%h, %MOD%)
    %sparse := mul(%v, 982451653)
    %in1 := insert(%in0, end, %sparse)
    %i1 := add(%i, 1)
    %more := lt(%i1, 500)
  while %more
  %inF := phi(%in0)
  %hist := new Map<u64,u32>()
  for [%i2, %val] in %inF:
    %hist0 := phi(%hist, %hist3)
    %cond := has(%hist0, %val)
    if %cond:
      %freq := read(%hist0, %val)
    else:
      %hist1 := insert(%hist0, %val)
    %freq0 := phi(%freq, 0)
    %hist2 := phi(%hist0, %hist1)
    %freq1 := add(%freq0, 1)
    %hist3 := write(%hist2, %val, %freq1)
  %histF := phi(%hist0)
  for [%k, %f] in %histF:
    %g64 := cast<u64>(%f)
    %kv := add(%k, %g64)
    emit(%kv)
  %n := size(%histF)
  ret %n
`

// Config parameterizes a load run.
type Config struct {
	Requests    int    // requests per phase (default 200)
	Concurrency int    // parallel clients (default 8)
	Engine      string // "vm" (default) or "interp"
	Program     string // .mir template; %MOD% is the variant marker
}

// Phase is the result of one load phase.
type Phase struct {
	Name      string
	Requests  int
	Errors    int
	CacheHits int
	Duration  time.Duration
	ReqPerSec float64
	Mean      time.Duration
	P50       time.Duration
	P90       time.Duration
	P99       time.Duration
}

func (c *Config) fill() {
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Engine == "" {
		c.Engine = "vm"
	}
	if c.Program == "" {
		c.Program = DefaultProgram
	}
}

// variant mints the i-th distinct program from the template. Variants
// differ in one constant (the hash modulus), so they cost the same to
// compile and run but hash to distinct cache keys.
func (c *Config) variant(i int) string {
	return strings.ReplaceAll(c.Program, "%MOD%", strconv.Itoa(97+2*i))
}

// request is the wire subset the harness sends and reads back. It
// mirrors internal/server's Request/Response without importing it, so
// the harness can also drive a remote daemon's handler stand-in.
type request struct {
	Program string `json:"program"`
	Engine  string `json:"engine,omitempty"`
	NoCache bool   `json:"noCache,omitempty"`
}

type response struct {
	OK    bool `json:"ok"`
	Cache *struct {
		Hit  bool `json:"hit"`
		Disk bool `json:"disk"`
	} `json:"cache"`
	Phases *struct {
		Parsed   bool `json:"parsed"`
		ADE      bool `json:"ade"`
		Compiled bool `json:"compiled"`
	} `json:"phases"`
	Result string `json:"result"`
	Output *struct {
		Count    uint64 `json:"count"`
		Checksum uint64 `json:"checksum"`
	} `json:"output"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Run executes the three phases against h and returns their results
// in order: cold, hot, mixed.
func Run(h http.Handler, cfg Config) ([]Phase, error) {
	cfg.fill()
	// Prime the hot program once so the hot phase measures pure cache
	// hits, not one cold outlier.
	hot := request{Program: cfg.variant(0), Engine: cfg.Engine}
	if _, _, err := post(h, hot); err != nil {
		return nil, fmt.Errorf("prime: %w", err)
	}
	phases := []struct {
		name string
		gen  func(i int) request
	}{
		{"cold", func(i int) request {
			return request{Program: cfg.variant(0), Engine: cfg.Engine, NoCache: true}
		}},
		{"hot", func(i int) request { return hot }},
		{"mixed", func(i int) request {
			if i%2 == 0 {
				return hot
			}
			// Fresh variants: first occurrence misses, and with more
			// variants than cache slots some re-miss later too.
			return request{Program: cfg.variant(1 + i/2), Engine: cfg.Engine}
		}},
	}
	var out []Phase
	for _, p := range phases {
		ph, err := runPhase(h, cfg, p.name, p.gen)
		if err != nil {
			return nil, fmt.Errorf("phase %s: %w", p.name, err)
		}
		out = append(out, ph)
	}
	return out, nil
}

func runPhase(h http.Handler, cfg Config, name string, gen func(i int) request) (Phase, error) {
	lat := make([]time.Duration, cfg.Requests)
	hits := make([]bool, cfg.Requests)
	errs := make([]bool, cfg.Requests)
	jobs := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex

	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				resp, _, err := post(h, gen(i))
				lat[i] = time.Since(t0)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					errs[i] = true
					continue
				}
				if !resp.OK {
					errs[i] = true
				}
				if resp.Cache != nil && resp.Cache.Hit {
					hits[i] = true
				}
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	dur := time.Since(start)
	if firstErr != nil {
		return Phase{}, firstErr
	}

	ph := Phase{Name: name, Requests: cfg.Requests, Duration: dur}
	for i := range lat {
		if errs[i] {
			ph.Errors++
		}
		if hits[i] {
			ph.CacheHits++
		}
		ph.Mean += lat[i]
	}
	ph.Mean /= time.Duration(cfg.Requests)
	ph.ReqPerSec = float64(cfg.Requests) / dur.Seconds()
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	ph.P50 = quantile(sorted, 0.50)
	ph.P90 = quantile(sorted, 0.90)
	ph.P99 = quantile(sorted, 0.99)
	return ph, nil
}

// quantile returns the exact q-quantile of a sorted latency slice
// (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func post(h http.Handler, req request) (*response, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	raw, err := io.ReadAll(w.Result().Body)
	if err != nil {
		return nil, w.Code, err
	}
	var resp response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, w.Code, fmt.Errorf("bad response JSON: %w", err)
	}
	if resp.Error != nil && w.Code >= 500 {
		return nil, w.Code, fmt.Errorf("server error %d %s: %s", w.Code, resp.Error.Code, resp.Error.Message)
	}
	return &resp, w.Code, nil
}

// Format renders the phase table for terminals and EXPERIMENTS.md.
func Format(phases []Phase) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %9s %9s %7s %10s %10s %10s %10s\n",
		"phase", "requests", "req/s", "hits", "mean", "p50", "p90", "p99")
	for _, p := range phases {
		fmt.Fprintf(&b, "%-6s %9d %9.0f %7d %10s %10s %10s %10s\n",
			p.Name, p.Requests, p.ReqPerSec, p.CacheHits,
			round(p.Mean), round(p.P50), round(p.P90), round(p.P99))
	}
	return b.String()
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
