package loadtest_test

import (
	"context"
	"testing"

	"memoir/internal/server"
	"memoir/internal/server/loadtest"
)

// The harness against a real in-process server: cold requests bypass
// the cache (zero hits), hot requests all hit, and no phase errors.
func TestPhasesAgainstServer(t *testing.T) {
	s, err := server.New(server.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	phases, err := loadtest.Run(s.Handler(), loadtest.Config{Requests: 30, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 3 {
		t.Fatalf("want 3 phases, got %d", len(phases))
	}
	byName := map[string]loadtest.Phase{}
	for _, p := range phases {
		if p.Errors > 0 {
			t.Errorf("phase %s: %d errors", p.Name, p.Errors)
		}
		if p.ReqPerSec <= 0 || p.P99 < p.P50 {
			t.Errorf("phase %s: nonsense stats %+v", p.Name, p)
		}
		byName[p.Name] = p
	}
	if h := byName["cold"].CacheHits; h != 0 {
		t.Errorf("cold phase saw %d cache hits; noCache must bypass", h)
	}
	if h := byName["hot"].CacheHits; h != 30 {
		t.Errorf("hot phase: want 30/30 cache hits, got %d", h)
	}
	if h := byName["mixed"].CacheHits; h < 15 {
		t.Errorf("mixed phase: want >=15 hits (the repeated program), got %d", h)
	}
	if testing.Verbose() {
		t.Log("\n" + loadtest.Format(phases))
	}
}
