package server

import (
	"fmt"
	"net/http"
	"testing"
)

// benchServe posts one request and fails the benchmark on any error.
func benchServe(b *testing.B, h http.Handler, req Request) *Response {
	b.Helper()
	resp, status := postJSON(b, h, "/v1/run", req)
	if status != http.StatusOK || !resp.OK {
		b.Fatalf("request failed: %d %+v", status, resp.Error)
	}
	return resp
}

// BenchmarkServeHot measures the steady-state cached path: the
// artifact comes from the raw-text alias (no parse, no ADE, no
// compile), so per-request cost is decode + execute + encode.
func BenchmarkServeHot(b *testing.B) {
	for _, engine := range []string{"vm", "interp"} {
		b.Run(engine, func(b *testing.B) {
			s, err := New(Config{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer s.pool.Close()
			h := s.Handler()
			benchServe(b, h, Request{Program: histProg, Engine: engine}) // prime
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchServe(b, h, Request{Program: histProg, Engine: engine})
			}
			b.StopTimer()
			if hits := s.CacheStats().Hits; hits < uint64(b.N) {
				b.Fatalf("expected >=%d cache hits, got %d", b.N, hits)
			}
		})
	}
}

// BenchmarkServeCold measures the full pipeline per request
// (noCache): parse + verify + ADE + verify + bytecode compile + run.
// Hot/cold is the cache's amortized win.
func BenchmarkServeCold(b *testing.B) {
	for _, engine := range []string{"vm", "interp"} {
		b.Run(engine, func(b *testing.B) {
			s, err := New(Config{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer s.pool.Close()
			h := s.Handler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchServe(b, h, Request{Program: histProg, Engine: engine, NoCache: true})
			}
		})
	}
}

// BenchmarkServeHotParallel is the hot path under client concurrency:
// concurrent VMs share one immutable bytecode artifact.
func BenchmarkServeHotParallel(b *testing.B) {
	s, err := New(Config{Workers: 8, Backlog: 1024})
	if err != nil {
		b.Fatal(err)
	}
	defer s.pool.Close()
	h := s.Handler()
	benchServe(b, h, Request{Program: histProg, Engine: "vm"})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, status := postJSON(b, h, "/v1/run", Request{Program: histProg, Engine: "vm"})
			if status != http.StatusOK || !resp.OK {
				panic(fmt.Sprintf("request failed: %d %+v", status, resp.Error))
			}
		}
	})
}
