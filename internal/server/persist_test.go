package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// storeServer builds a test server over a durable store directory.
func storeServer(t *testing.T, dir string, mut ...func(*Config)) *Server {
	t.Helper()
	return newTestServer(t, append([]func(*Config){func(c *Config) { c.StoreDir = dir }}, mut...)...)
}

// Acceptance: a restart serves byte-identical outputs from recovered
// state — the repeat request touches no pipeline phase at all (the
// persisted alias index makes it a no-parse hit).
func TestRestartServesRecoveredArtifacts(t *testing.T) {
	dir := t.TempDir()
	s1 := storeServer(t, dir)
	first, _ := postJSON(t, s1.Handler(), "/v1/run", Request{Program: histProg})
	if !first.OK {
		t.Fatalf("first run: %+v", first.Error)
	}
	if ss, _ := s1.StoreStats(); ss.Writes == 0 {
		t.Fatal("compile did not persist an artifact")
	}

	s2 := storeServer(t, dir)
	if s2.recoveredArtifacts != 1 || s2.recoveredQuarantined != 0 {
		t.Fatalf("recovery: %d ok, %d quarantined; want 1, 0",
			s2.recoveredArtifacts, s2.recoveredQuarantined)
	}
	again, _ := postJSON(t, s2.Handler(), "/v1/run", Request{Program: histProg})
	if !again.OK || again.Cache == nil || !again.Cache.Hit {
		t.Fatalf("restart miss: %+v", again)
	}
	if p := again.Phases; p.Parsed || p.ADE || p.Compiled {
		t.Fatalf("restart repeat ran pipeline phases: %+v", p)
	}
	if snap := s2.phases.snapshot(); snap.Parses != 0 || snap.ADEApplies != 0 || snap.Compiles != 0 {
		t.Fatalf("phase counters advanced on a recovered hit: %+v", snap)
	}
	if again.Result != first.Result || *again.Output != *first.Output {
		t.Fatalf("answers differ across restart:\n before: %s %+v\n after:  %s %+v",
			first.Result, first.Output, again.Result, again.Output)
	}
}

// An LRU-evicted artifact hot-loads from disk without re-running ADE;
// the phase counters prove it (parses +1 for the hash lookup,
// ADEApplies and Compiles frozen) and the response is marked as a
// disk hit.
func TestEvictedArtifactHotLoadsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s := storeServer(t, dir, func(c *Config) { c.CacheEntries = 1 })
	h := s.Handler()
	progB := strings.ReplaceAll(histProg, "97", "61")

	first, _ := postJSON(t, h, "/v1/run", Request{Program: histProg})
	if !first.OK {
		t.Fatalf("first: %+v", first.Error)
	}
	if r, _ := postJSON(t, h, "/v1/run", Request{Program: progB}); !r.OK {
		t.Fatalf("evictor: %+v", r.Error)
	}
	if cs := s.CacheStats(); cs.Evictions == 0 {
		t.Fatal("CacheEntries=1 did not evict")
	}

	before := s.phases.snapshot()
	again, _ := postJSON(t, h, "/v1/run", Request{Program: histProg})
	if !again.OK || again.Cache == nil || !again.Cache.Hit || !again.Cache.Disk {
		t.Fatalf("want a disk hit, got %+v", again.Cache)
	}
	if p := again.Phases; !p.Parsed || p.ADE || p.Compiled {
		t.Fatalf("disk hit phases: %+v (want parsed only)", p)
	}
	after := s.phases.snapshot()
	if after.ADEApplies != before.ADEApplies || after.Compiles != before.Compiles {
		t.Fatalf("disk load re-ran the pipeline: before %+v, after %+v", before, after)
	}
	if after.Parses != before.Parses+1 {
		t.Fatalf("disk load parses: before %d, after %d (want +1)", before.Parses, after.Parses)
	}
	if s.storeLoads.Load() != 1 {
		t.Fatalf("storeLoads = %d, want 1", s.storeLoads.Load())
	}
	if again.Result != first.Result || *again.Output != *first.Output {
		t.Fatalf("disk-loaded answer differs: %s vs %s", again.Result, first.Result)
	}
}

// Acceptance: a corrupt artifact (flipped byte on disk) is
// quarantined at recovery — never served — and the program is
// recompiled on demand; the repaired artifact survives the next
// restart.
func TestCorruptArtifactQuarantinedNotServed(t *testing.T) {
	dir := t.TempDir()
	s1 := storeServer(t, dir)
	first, _ := postJSON(t, s1.Handler(), "/v1/run", Request{Program: histProg})
	if !first.OK {
		t.Fatalf("first: %+v", first.Error)
	}

	arts, err := filepath.Glob(filepath.Join(dir, "artifacts", "*.art"))
	if err != nil || len(arts) != 1 {
		t.Fatalf("artifacts on disk: %v (%v)", arts, err)
	}
	raw, err := os.ReadFile(arts[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(arts[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := storeServer(t, dir)
	if s2.recoveredArtifacts != 0 {
		t.Fatalf("recovered %d artifacts from a corrupt store", s2.recoveredArtifacts)
	}
	if ss, _ := s2.StoreStats(); ss.Quarantined == 0 {
		t.Fatal("corrupt artifact was not quarantined")
	}
	if _, err := os.Stat(arts[0]); !os.IsNotExist(err) {
		t.Fatal("corrupt artifact still in artifacts/")
	}
	q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.art*"))
	if len(q) == 0 {
		t.Fatal("quarantine directory is empty — corrupt file was deleted, not preserved")
	}

	// Recompiled on demand with the right answer, and re-persisted.
	again, _ := postJSON(t, s2.Handler(), "/v1/run", Request{Program: histProg})
	if !again.OK || !again.Phases.ADE {
		t.Fatalf("recompile after quarantine: %+v", again)
	}
	if again.Result != first.Result || *again.Output != *first.Output {
		t.Fatal("recompiled answer differs from the original")
	}
	s3 := storeServer(t, dir)
	if s3.recoveredArtifacts != 1 {
		t.Fatalf("repaired artifact did not survive restart: recovered %d", s3.recoveredArtifacts)
	}
}

// The live fleet profile is snapshotted on drain and merged back on
// restart; the restarted daemon flags it via profileRecovered.
func TestProfilePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	mut := func(c *Config) {
		c.PersistProfile = true
		c.ProfileSnapshotEvery = -1 // on-drain snapshot only
		c.ProfileSample = 1         // record every executed request
	}
	s1 := storeServer(t, dir, mut)
	if r, _ := postJSON(t, s1.Handler(), "/v1/run", Request{Program: histProg}); !r.OK {
		t.Fatalf("run: %+v", r.Error)
	}
	doc1 := s1.prof.document()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "profile", "fleet.profile")); err != nil {
		t.Fatalf("drain did not snapshot the profile: %v", err)
	}

	s2 := storeServer(t, dir, mut)
	snap := s2.prof.snapshot()
	if !snap.Recovered || snap.Programs == 0 {
		t.Fatalf("profile not recovered: %+v", snap)
	}
	// The merge is commutative and the snapshot was the whole
	// document, so the recovered document is byte-identical.
	if doc2 := s2.prof.document(); !bytes.Equal(doc1, doc2) {
		t.Fatalf("recovered profile differs:\n before: %s\n after:  %s", doc1, doc2)
	}
	// /v1/stats surfaces the flag.
	r := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	w := httptest.NewRecorder()
	s2.Handler().ServeHTTP(w, r)
	if !strings.Contains(w.Body.String(), `"profileRecovered": true`) {
		t.Fatal("/v1/stats does not surface profileRecovered")
	}
}

// Acceptance: a program hash that repeatedly blows its budget returns
// the stable `quarantined` code (fast, 422, with a retry hint) until
// a half-open probe succeeds.
func TestBreakerQuarantinesProgramHash(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerBackoff = time.Hour // no probe within this test
	})
	h := s.Handler()
	bad := Request{Program: histProg, MaxSteps: 50}
	for i := 0; i < 2; i++ {
		if r, status := postJSON(t, h, "/v1/run", bad); status != http.StatusTooManyRequests || r.Error.Code != CodeStepBudget {
			t.Fatalf("setup run %d: %d %+v", i, status, r.Error)
		}
	}
	// Tripped: even a request with a healthy budget is rejected fast,
	// with the stable code and a retry hint.
	r, status := postJSON(t, h, "/v1/run", Request{Program: histProg})
	if status != http.StatusUnprocessableEntity || r.Error == nil || r.Error.Code != CodeQuarantined {
		t.Fatalf("want 422 quarantined, got %d %+v", status, r.Error)
	}
	if r.Error.RetryAfterMs <= 0 {
		t.Fatalf("quarantined without a retry hint: %+v", r.Error)
	}
	if r.Phases.ADE || r.Phases.Compiled {
		t.Fatalf("quarantined rejection ran the pipeline: %+v", r.Phases)
	}
	// The Retry-After header mirrors the structured hint.
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(`{"program":`+jsonString(histProg)+`}`))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("quarantined response missing Retry-After header")
	}
	// Other programs are unaffected.
	if r, _ := postJSON(t, h, "/v1/run", Request{Program: divZeroProg}); r.Error == nil || r.Error.Code != CodeRuntimeError {
		t.Fatalf("unrelated program affected: %+v", r.Error)
	}
	// /v1/compile stays available for the quarantined hash: the
	// breaker guards execution, not compilation.
	if r, _ := postJSON(t, h, "/v1/compile", Request{Program: histProg}); !r.OK {
		t.Fatalf("compile rejected for quarantined hash: %+v", r.Error)
	}
	if snap := s.breaker.snapshot(); snap.Trips != 1 || snap.Programs != 1 || snap.Rejects < 2 {
		t.Fatalf("breaker snapshot: %+v", snap)
	}
}

// After the backoff decays, one half-open probe runs; success closes
// the breaker and the hash serves normally again.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerBackoff = 20 * time.Millisecond
	})
	h := s.Handler()
	bad := Request{Program: histProg, MaxSteps: 50}
	postJSON(t, h, "/v1/run", bad)
	postJSON(t, h, "/v1/run", bad)
	if r, _ := postJSON(t, h, "/v1/run", Request{Program: histProg}); r.Error == nil || r.Error.Code != CodeQuarantined {
		t.Fatalf("not quarantined after threshold: %+v", r.Error)
	}
	time.Sleep(40 * time.Millisecond)
	// The probe runs with the request's own (healthy) budget and
	// succeeds, closing the breaker.
	if r, _ := postJSON(t, h, "/v1/run", Request{Program: histProg}); !r.OK {
		t.Fatalf("half-open probe failed: %+v", r.Error)
	}
	if r, _ := postJSON(t, h, "/v1/run", Request{Program: histProg}); !r.OK {
		t.Fatalf("recovered hash rejected: %+v", r.Error)
	}
	if snap := s.breaker.snapshot(); snap.Recoveries != 1 || snap.Programs != 0 {
		t.Fatalf("breaker snapshot: %+v", snap)
	}
}

// Fault-injected requests never count against the breaker: fault
// injection is a test surface, not program behavior.
func TestBreakerIgnoresFaultInjectedRuns(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 1 // hair trigger
		c.BreakerBackoff = time.Hour
	})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		r, _ := postJSON(t, h, "/v1/run", Request{Program: histProg, Fault: "alloc-fail:1"})
		if r.Error == nil || r.Error.Code != CodeRuntimePanic {
			t.Fatalf("faulted run %d: %+v", i, r.Error)
		}
	}
	if r, _ := postJSON(t, h, "/v1/run", Request{Program: histProg}); !r.OK {
		t.Fatalf("fault-injected runs tripped the breaker: %+v", r.Error)
	}
}

// jsonString JSON-encodes a Go string (for hand-built request bodies).
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
