// Package store is adeserved's crash-safe durable layer: a
// content-addressed artifact store plus a fleet-profile snapshot,
// both written with the temp-file + fsync + atomic-rename discipline
// and wrapped in a per-entry checksum envelope, so a kill -9 at any
// instant leaves the directory loadable.
//
// An artifact entry persists the *result* of the compile pipeline in
// its canonical durable form: the post-ADE program text (ir.Print is
// stable and round-trips through the parser — pinned by
// parser.TestRoundTripSuite), the options fingerprint, the remarks
// digest, and the compile report fields the server caches. Loading an
// entry re-materializes the bytecode deterministically from that text
// without re-running ADE; the caller re-runs the bytecode verifier on
// the result before anything enters the serving cache.
//
// Nothing in this package deletes data on failure. A torn, truncated,
// or checksum-mismatched file is *quarantined* — renamed aside into
// quarantine/ with its content intact — so a corrupt artifact is
// never served and never destroyed. The same posture covers semantic
// rejections reported by the caller (parse/verify/compile failures on
// load).
//
// The store participates in deterministic fault injection: an
// injector built from the internal/faults I/O points (write-fail:N,
// torn-write:N, corrupt-on-read:N) makes the N-th write fail, land
// torn, or the N-th read return flipped bytes — the chaos harness's
// stand-in for mid-write kills and media corruption.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"memoir/internal/adeprofile"
	"memoir/internal/faults"
)

// formatVersion is the envelope header magic. Bump only with a
// migration path: recovery quarantines unknown versions rather than
// guessing.
const formatVersion = "adestore/v1"

const (
	artifactsDir  = "artifacts"
	profileDir    = "profile"
	quarantineDir = "quarantine"
	tmpDir        = "tmp"

	artifactExt = ".art"
	profileName = "fleet.profile"
)

// Entry is one persisted compile artifact. Program is the canonical
// post-ADE program text (the pre-ADE text when ADE was off): parsing
// and bytecode-compiling it re-materializes the executable artifact
// without re-running the ADE pipeline.
type Entry struct {
	// ProgramHash and OptionsFP are the cache key: ir.ProgramHash of
	// the canonical pre-ADE program and core.Options.Fingerprint (or
	// the server's "ade=off" marker).
	ProgramHash string `json:"programHash"`
	OptionsFP   string `json:"optionsFP"`
	// ADE records whether the pipeline ran for this artifact.
	ADE bool `json:"ade"`
	// Program is the canonical post-ADE (or pre-ADE when !ADE) text.
	Program string `json:"program"`
	// Degraded and Classes mirror the compile report fields the
	// server serves from its cache.
	Degraded []string `json:"degraded,omitempty"`
	Classes  int      `json:"classes,omitempty"`
	// RemarksDigest is sha256 over the stable remark text of the
	// compile that produced this artifact ("" when remarks were off).
	RemarksDigest string `json:"remarksDigest,omitempty"`
	// Aliases are the raw-text alias index entries known at persist
	// time, so a restarted daemon serves byte-identical repeats
	// without even a parse.
	Aliases []string `json:"aliases,omitempty"`
	// Size is the modeled in-memory footprint (the LRU byte bound's
	// unit), carried so recovery warms the cache with the same
	// accounting the original compile used.
	Size int64 `json:"size"`
}

// Stats is a snapshot of the store counters.
type Stats struct {
	Writes      uint64 `json:"writes"`      // successful atomic writes
	WriteErrors uint64 `json:"writeErrors"` // failed writes (incl. injected)
	Fsyncs      uint64 `json:"fsyncs"`      // file + directory fsyncs issued
	Loads       uint64 `json:"loads"`       // artifact reads served intact
	LoadErrors  uint64 `json:"loadErrors"`  // reads rejected (corrupt, torn, bad version)
	Quarantined uint64 `json:"quarantined"` // files renamed aside, never deleted
}

// Store is the durable layer rooted at one directory. All methods are
// safe for concurrent use.
type Store struct {
	dir string

	mu     sync.Mutex
	inj    *faults.Injector
	tmpSeq uint64
	stats  Stats
	nosync bool // tests only: skip fsync for speed
}

// Open creates (if needed) the store layout under dir and removes
// stale temp files from a previous incarnation's interrupted writes.
// Artifacts and profiles are never touched here — recovery decides
// their fate entry by entry.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{artifactsDir, profileDir, quarantineDir, tmpDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// Temp files are pre-rename by construction: whatever is in tmp/
	// never became visible, so dropping it is not data loss.
	if stale, err := filepath.Glob(filepath.Join(dir, tmpDir, "*")); err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetInjector wires a deterministic I/O fault injector (chaos mode
// and tests). The injector is single-store state: never share one.
func (s *Store) SetInjector(inj *faults.Injector) {
	s.mu.Lock()
	s.inj = inj
	s.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// fileName maps a cache key to its content-addressed artifact file.
func fileName(programHash, optionsFP string) string {
	sum := sha256.Sum256([]byte(programHash + "\x00" + optionsFP))
	return hex.EncodeToString(sum[:]) + artifactExt
}

// envelope wraps payload with the checksum header:
//
//	adestore/v1 sha256=<hex> len=<n>\n<payload>
//
// The header binds both length and content, so truncation (torn
// write) and bit flips are equally detectable.
func envelope(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	head := fmt.Sprintf("%s sha256=%s len=%d\n", formatVersion, hex.EncodeToString(sum[:]), len(payload))
	return append([]byte(head), payload...)
}

// openEnvelope verifies the header and returns the payload.
func openEnvelope(raw []byte) ([]byte, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, errors.New("missing envelope header")
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 || fields[0] != formatVersion {
		return nil, fmt.Errorf("bad envelope header %q", string(raw[:nl]))
	}
	wantSum, ok1 := strings.CutPrefix(fields[1], "sha256=")
	wantLenS, ok2 := strings.CutPrefix(fields[2], "len=")
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("bad envelope header %q", string(raw[:nl]))
	}
	wantLen, err := strconv.Atoi(wantLenS)
	if err != nil {
		return nil, fmt.Errorf("bad envelope length %q", wantLenS)
	}
	payload := raw[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("torn payload: %d bytes, header says %d", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// writeAtomic durably lands data at rel (relative to the store root):
// unique temp file, write, fsync, rename, fsync the parent directory.
// The injected write faults hook in here: a write-fail aborts before
// any bytes land; a torn write truncates the data mid-payload and
// skips the fsyncs — exactly the state a kill -9 between write and
// sync leaves behind — while still reporting success.
func (s *Store) writeAtomic(rel string, data []byte) error {
	s.mu.Lock()
	inj := s.inj
	if inj.FailWrite() {
		s.stats.WriteErrors++
		s.mu.Unlock()
		return fmt.Errorf("store: injected fault write-fail on %s", rel)
	}
	torn := inj.TornWrite()
	s.tmpSeq++
	seq := s.tmpSeq
	nosync := s.nosync
	s.mu.Unlock()

	if torn {
		data = data[:len(data)/2]
	}
	tmp := filepath.Join(s.dir, tmpDir, fmt.Sprintf("%s.%d.tmp", filepath.Base(rel), seq))
	final := filepath.Join(s.dir, rel)
	err := func() error {
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			return err
		}
		if !torn && !nosync {
			if err := f.Sync(); err != nil {
				f.Close()
				return err
			}
			s.countFsync()
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp, final); err != nil {
			return err
		}
		if !torn && !nosync {
			if dir, err := os.Open(filepath.Dir(final)); err == nil {
				if dir.Sync() == nil {
					s.countFsync()
				}
				dir.Close()
			}
		}
		return nil
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		os.Remove(tmp)
		s.stats.WriteErrors++
		return fmt.Errorf("store: %w", err)
	}
	s.stats.Writes++
	return nil
}

func (s *Store) countFsync() {
	s.mu.Lock()
	s.stats.Fsyncs++
	s.mu.Unlock()
}

// readVerified reads rel and opens its envelope, applying the
// injected corrupt-on-read fault first. On any integrity failure the
// file is quarantined and an error returned.
func (s *Store) readVerified(rel string) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, rel))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	corrupt := s.inj.CorruptRead()
	s.mu.Unlock()
	if corrupt && len(raw) > 0 {
		// Flip one bit deep in the payload, past any header bytes.
		raw = append([]byte(nil), raw...)
		raw[len(raw)-1-len(raw)/4] ^= 0x40
	}
	payload, err := openEnvelope(raw)
	if err != nil {
		s.mu.Lock()
		s.stats.LoadErrors++
		s.mu.Unlock()
		qerr := s.Quarantine(rel, err.Error())
		return nil, fmt.Errorf("store: %s: %w (quarantined: %v)", rel, err, qerr == nil)
	}
	s.mu.Lock()
	s.stats.Loads++
	s.mu.Unlock()
	return payload, nil
}

// PutArtifact durably persists one compiled artifact.
func (s *Store) PutArtifact(e *Entry) error {
	payload, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	rel := filepath.Join(artifactsDir, fileName(e.ProgramHash, e.OptionsFP))
	return s.writeAtomic(rel, envelope(payload))
}

// GetArtifact loads the artifact for (programHash, optionsFP).
// Returns (nil, nil) when no such entry exists; a corrupt entry is
// quarantined and reported as an error. The caller still owns
// semantic validation (parse, verify, compile, bytecode verify) and
// quarantines semantic failures itself via Quarantine.
func (s *Store) GetArtifact(programHash, optionsFP string) (*Entry, error) {
	rel := filepath.Join(artifactsDir, fileName(programHash, optionsFP))
	payload, err := s.readVerified(rel)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	e, err := decodeEntry(payload)
	if err != nil {
		s.mu.Lock()
		s.stats.LoadErrors++
		s.mu.Unlock()
		s.Quarantine(rel, err.Error())
		return nil, fmt.Errorf("store: %s: %w", rel, err)
	}
	if e.ProgramHash != programHash || e.OptionsFP != optionsFP {
		// A checksum-valid file holding the wrong key means the
		// content-address mapping itself is broken; never serve it.
		s.mu.Lock()
		s.stats.LoadErrors++
		s.mu.Unlock()
		s.Quarantine(rel, "key mismatch")
		return nil, fmt.Errorf("store: %s: entry key does not match its address", rel)
	}
	return e, nil
}

func decodeEntry(payload []byte) (*Entry, error) {
	e := &Entry{}
	if err := json.Unmarshal(payload, e); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	if e.ProgramHash == "" || e.OptionsFP == "" || e.Program == "" {
		return nil, errors.New("decode: entry missing required fields")
	}
	return e, nil
}

// QuarantineArtifact renames the artifact for a key aside (semantic
// rejection by the caller: the entry's checksum was fine but its
// program no longer parses, verifies, or compiles).
func (s *Store) QuarantineArtifact(programHash, optionsFP, reason string) error {
	return s.Quarantine(filepath.Join(artifactsDir, fileName(programHash, optionsFP)), reason)
}

// Quarantine moves rel (relative to the store root) into quarantine/,
// never clobbering an earlier quarantined file of the same name. The
// file's bytes are preserved exactly for post-mortem analysis; a
// sibling ".reason" file records why.
func (s *Store) Quarantine(rel, reason string) error {
	src := filepath.Join(s.dir, rel)
	base := filepath.Base(rel)
	dst := filepath.Join(s.dir, quarantineDir, base)
	for n := 1; ; n++ {
		if _, err := os.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d", base, n))
	}
	if err := os.Rename(src, dst); err != nil {
		return fmt.Errorf("store: quarantine %s: %w", rel, err)
	}
	os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	s.mu.Lock()
	s.stats.Quarantined++
	s.mu.Unlock()
	return nil
}

// RecoverArtifacts scans the artifact directory, quarantines every
// torn/corrupt/undecodable file, and returns the intact entries in a
// deterministic (file name) order. Semantic validation is the
// caller's job: entries that fail to re-materialize must be handed
// back via QuarantineArtifact.
func (s *Store) RecoverArtifacts() ([]*Entry, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, artifactsDir, "*"+artifactExt))
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	sort.Strings(names)
	var out []*Entry
	for _, name := range names {
		rel := filepath.Join(artifactsDir, filepath.Base(name))
		payload, err := s.readVerified(rel)
		if err != nil {
			continue // quarantined by readVerified
		}
		e, err := decodeEntry(payload)
		if err != nil {
			s.mu.Lock()
			s.stats.LoadErrors++
			s.mu.Unlock()
			s.Quarantine(rel, err.Error())
			continue
		}
		if fileName(e.ProgramHash, e.OptionsFP) != filepath.Base(name) {
			s.mu.Lock()
			s.stats.LoadErrors++
			s.mu.Unlock()
			s.Quarantine(rel, "key mismatch")
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// WriteProfile atomically snapshots the merged fleet profile in its
// canonical adeprofile/v1 serialization, checksummed like artifacts.
func (s *Store) WriteProfile(p *adeprofile.Profile) error {
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		return fmt.Errorf("store: profile: %w", err)
	}
	return s.writeAtomic(filepath.Join(profileDir, profileName), envelope(buf.Bytes()))
}

// ReadProfile loads the persisted fleet profile. Returns (nil, nil)
// when no snapshot exists; a corrupt or invalid snapshot is
// quarantined and reported as an error.
func (s *Store) ReadProfile() (*adeprofile.Profile, error) {
	rel := filepath.Join(profileDir, profileName)
	payload, err := s.readVerified(rel)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	p, err := adeprofile.Read(bytes.NewReader(payload))
	if err != nil {
		s.mu.Lock()
		s.stats.LoadErrors++
		s.mu.Unlock()
		s.Quarantine(rel, err.Error())
		return nil, fmt.Errorf("store: profile: %w", err)
	}
	return p, nil
}
