package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"memoir/internal/adeprofile"
	"memoir/internal/faults"
)

func testEntry(i int) *Entry {
	return &Entry{
		ProgramHash: fmt.Sprintf("hash-%04d", i),
		OptionsFP:   "rte=on",
		ADE:         true,
		Program:     fmt.Sprintf("fn u64 @main():\n  ret %d\n", i),
		Degraded:    nil,
		Classes:     i,
		Aliases:     []string{fmt.Sprintf("alias-%d", i)},
		Size:        int64(100 + i),
	}
}

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.nosync = true
	return s
}

func mustPut(t *testing.T, s *Store, e *Entry) {
	t.Helper()
	if err := s.PutArtifact(e); err != nil {
		t.Fatalf("PutArtifact: %v", err)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	s := open(t)
	e := testEntry(1)
	mustPut(t, s, e)
	got, err := s.GetArtifact(e.ProgramHash, e.OptionsFP)
	if err != nil {
		t.Fatalf("GetArtifact: %v", err)
	}
	if got == nil {
		t.Fatal("entry missing")
	}
	if got.Program != e.Program || got.Classes != e.Classes || got.Size != e.Size ||
		got.ProgramHash != e.ProgramHash || got.OptionsFP != e.OptionsFP ||
		len(got.Aliases) != 1 || got.Aliases[0] != e.Aliases[0] {
		t.Fatalf("round trip mutated entry: %+v vs %+v", got, e)
	}
	if miss, err := s.GetArtifact("nope", "rte=on"); err != nil || miss != nil {
		t.Fatalf("missing entry: got (%v, %v), want (nil, nil)", miss, err)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Loads != 1 || st.LoadErrors != 0 || st.Quarantined != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// No temp debris after a successful write.
	if debris, _ := filepath.Glob(filepath.Join(s.dir, tmpDir, "*")); len(debris) != 0 {
		t.Fatalf("temp debris left behind: %v", debris)
	}
}

// artifactPath returns the single on-disk artifact file (fails the
// test unless exactly one exists).
func artifactPath(t *testing.T, s *Store) string {
	t.Helper()
	names, _ := filepath.Glob(filepath.Join(s.dir, artifactsDir, "*"+artifactExt))
	if len(names) != 1 {
		t.Fatalf("want exactly 1 artifact file, have %d", len(names))
	}
	return names[0]
}

func TestCorruptArtifactQuarantinedNotServed(t *testing.T) {
	for _, mutate := range []struct {
		name string
		f    func(raw []byte) []byte
	}{
		{"bit-flip", func(raw []byte) []byte { raw[len(raw)-2] ^= 1; return raw }},
		{"truncate", func(raw []byte) []byte { return raw[:len(raw)/2] }},
		{"bad-version", func(raw []byte) []byte { return append([]byte("adestore/v9 x y\n"), raw...) }},
		{"empty", func(raw []byte) []byte { return nil }},
	} {
		t.Run(mutate.name, func(t *testing.T) {
			s := open(t)
			e := testEntry(2)
			mustPut(t, s, e)
			path := artifactPath(t, s)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mutate.f(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := s.GetArtifact(e.ProgramHash, e.OptionsFP)
			if err == nil || got != nil {
				t.Fatalf("corrupt entry served: (%v, %v)", got, err)
			}
			// The file moved aside, bytes intact — never deleted.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file still at %s", path)
			}
			q, _ := filepath.Glob(filepath.Join(s.dir, quarantineDir, "*"+artifactExt))
			if len(q) != 1 {
				t.Fatalf("quarantine has %d artifact files, want 1", len(q))
			}
			if st := s.Stats(); st.Quarantined != 1 || st.LoadErrors != 1 {
				t.Fatalf("stats: %+v", st)
			}
			// A second Get is a clean miss, not an error loop.
			if again, err := s.GetArtifact(e.ProgramHash, e.OptionsFP); err != nil || again != nil {
				t.Fatalf("after quarantine: (%v, %v), want clean miss", again, err)
			}
		})
	}
}

func TestKeyMismatchQuarantined(t *testing.T) {
	s := open(t)
	e := testEntry(3)
	mustPut(t, s, e)
	// Copy the (checksum-valid) file to a different key's address.
	raw, err := os.ReadFile(artifactPath(t, s))
	if err != nil {
		t.Fatal(err)
	}
	wrong := filepath.Join(s.dir, artifactsDir, fileName("other-hash", e.OptionsFP))
	if err := os.WriteFile(wrong, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := s.GetArtifact("other-hash", e.OptionsFP); err == nil || got != nil {
		t.Fatalf("mis-addressed entry served: (%v, %v)", got, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInjectedWriteFail(t *testing.T) {
	s := open(t)
	pt, err := faults.ByName("write-fail:1")
	if err != nil {
		t.Fatal(err)
	}
	s.SetInjector(faults.NewInjector(pt))
	e := testEntry(4)
	if err := s.PutArtifact(e); err == nil {
		t.Fatal("injected write-fail did not fail the write")
	}
	if got, _ := s.GetArtifact(e.ProgramHash, e.OptionsFP); got != nil {
		t.Fatal("failed write left a readable entry")
	}
	// The injector fired once; the next write succeeds.
	mustPut(t, s, e)
	if got, err := s.GetArtifact(e.ProgramHash, e.OptionsFP); err != nil || got == nil {
		t.Fatalf("write after fault: (%v, %v)", got, err)
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Writes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestInjectedTornWriteDetectedOnRead(t *testing.T) {
	s := open(t)
	pt, err := faults.ByName("torn-write:1")
	if err != nil {
		t.Fatal(err)
	}
	s.SetInjector(faults.NewInjector(pt))
	e := testEntry(5)
	// The torn write reports success — that is the point: the crash
	// happened after the syscall returned, before the data was durable.
	mustPut(t, s, e)
	got, err := s.GetArtifact(e.ProgramHash, e.OptionsFP)
	if err == nil || got != nil {
		t.Fatalf("torn entry served: (%v, %v)", got, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("torn file not quarantined: %+v", st)
	}
}

func TestInjectedCorruptRead(t *testing.T) {
	s := open(t)
	e := testEntry(6)
	mustPut(t, s, e)
	pt, err := faults.ByName("corrupt-on-read:1")
	if err != nil {
		t.Fatal(err)
	}
	s.SetInjector(faults.NewInjector(pt))
	if got, err := s.GetArtifact(e.ProgramHash, e.OptionsFP); err == nil || got != nil {
		t.Fatalf("corrupted read served: (%v, %v)", got, err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.LoadErrors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRecoverArtifacts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.nosync = true
	for i := 0; i < 5; i++ {
		mustPut(t, s, testEntry(i))
	}
	// Corrupt one, truncate another, drop debris in tmp/.
	names, _ := filepath.Glob(filepath.Join(dir, artifactsDir, "*"+artifactExt))
	if len(names) != 5 {
		t.Fatalf("have %d files", len(names))
	}
	raw, _ := os.ReadFile(names[1])
	raw[len(raw)-3] ^= 0xff
	os.WriteFile(names[1], raw, 0o644)
	raw2, _ := os.ReadFile(names[3])
	os.WriteFile(names[3], raw2[:10], 0o644)
	os.WriteFile(filepath.Join(dir, tmpDir, "left.over.tmp"), []byte("junk"), 0o644)

	// A fresh store (the restarted daemon) recovers.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := s2.RecoverArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(entries))
	}
	if st := s2.Stats(); st.Quarantined != 2 || st.Loads != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if debris, _ := filepath.Glob(filepath.Join(dir, tmpDir, "*")); len(debris) != 0 {
		t.Fatalf("Open did not clear temp debris: %v", debris)
	}
	// Recovery order is deterministic (file-name order).
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries2, err := again.RecoverArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries2) != len(entries) {
		t.Fatalf("second recovery found %d entries", len(entries2))
	}
	for i := range entries {
		if entries[i].ProgramHash != entries2[i].ProgramHash {
			t.Fatalf("recovery order unstable at %d", i)
		}
	}
}

func TestProfileRoundTripAndQuarantine(t *testing.T) {
	s := open(t)
	// No snapshot yet: clean miss.
	if p, err := s.ReadProfile(); err != nil || p != nil {
		t.Fatalf("missing profile: (%v, %v)", p, err)
	}
	p := adeprofile.New()
	if err := s.WriteProfile(p); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadProfile()
	if err != nil || got == nil {
		t.Fatalf("ReadProfile: (%v, %v)", got, err)
	}
	var a, b bytes.Buffer
	p.Write(&a)
	got.Write(&b)
	if a.String() != b.String() {
		t.Fatal("profile round trip not byte-identical")
	}
	// Overwrite keeps exactly one live snapshot.
	if err := s.WriteProfile(p); err != nil {
		t.Fatal(err)
	}
	// Corrupt it: quarantined, clean miss after.
	path := filepath.Join(s.dir, profileDir, profileName)
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0x10
	os.WriteFile(path, raw, 0o644)
	if bad, err := s.ReadProfile(); err == nil || bad != nil {
		t.Fatalf("corrupt profile served: (%v, %v)", bad, err)
	}
	if p2, err := s.ReadProfile(); err != nil || p2 != nil {
		t.Fatalf("after quarantine: (%v, %v), want clean miss", p2, err)
	}
}

func TestQuarantineNeverClobbers(t *testing.T) {
	s := open(t)
	e := testEntry(7)
	for i := 0; i < 3; i++ {
		mustPut(t, s, e)
		path := artifactPath(t, s)
		raw, _ := os.ReadFile(path)
		raw[len(raw)-1] ^= 1
		os.WriteFile(path, raw, 0o644)
		if got, err := s.GetArtifact(e.ProgramHash, e.OptionsFP); err == nil || got != nil {
			t.Fatalf("round %d: corrupt served", i)
		}
	}
	q, _ := filepath.Glob(filepath.Join(s.dir, quarantineDir, "*"+artifactExt+"*"))
	var files int
	for _, name := range q {
		if !strings.HasSuffix(name, ".reason") {
			files++
		}
	}
	if files != 3 {
		t.Fatalf("quarantine kept %d generations, want 3 (%v)", files, q)
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	s := open(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				e := testEntry(i % 5)
				if err := s.PutArtifact(e); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := s.GetArtifact(e.ProgramHash, e.OptionsFP); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.WriteErrors != 0 || st.LoadErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFsyncCounter(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, testEntry(8))
	if st := s.Stats(); st.Fsyncs < 2 {
		// One for the temp file, one for the directory.
		t.Fatalf("fsyncs = %d, want >= 2", st.Fsyncs)
	}
}
