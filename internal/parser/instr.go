package parser

import (
	"fmt"

	"memoir/internal/ir"
)

// checkArgs enforces an instruction's parse-time arity (max < 0 means
// unbounded) and rejects the bare `end` marker at every position not
// listed in endOK, so the typing code below can index operands without
// re-checking. ir.Verify re-checks arities too, but the parser sees
// malformed input first and must produce a positioned error, not a
// panic.
func checkArgs(c *cursor, op string, args []ir.Operand, min, max int, endOK ...int) error {
	if len(args) < min || (max >= 0 && len(args) > max) {
		want := fmt.Sprintf("%d", min)
		switch {
		case max < 0:
			want = fmt.Sprintf("at least %d", min)
		case max != min:
			want = fmt.Sprintf("%d..%d", min, max)
		}
		return fmt.Errorf("line %d: %s expects %s argument(s), got %d", c.line, op, want, len(args))
	}
	for i, a := range args {
		if a.Base != nil {
			continue
		}
		ok := false
		for _, j := range endOK {
			if i == j {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("line %d: %s argument %d: bare `end` is only valid as a seq insert position", c.line, op, i+1)
		}
	}
	return nil
}

// parseInstr reads one instruction line (results already on the line).
func (p *parser) parseInstr(c *cursor) (*ir.Instr, error) {
	// Optional results.
	var resNames []string
	save := c.i
	switch {
	case c.peek().kind == tValue:
		n := c.next().text
		if c.accept(":=") {
			resNames = []string{n}
		} else {
			c.i = save
		}
	case c.at("("):
		c.i++
		a, err1 := c.expectKind(tValue)
		if err1 == nil && c.accept(",") {
			b, err2 := c.expectKind(tValue)
			if err2 == nil && c.accept(")") && c.accept(":=") {
				resNames = []string{a, b}
			} else {
				c.i = save
			}
		} else {
			c.i = save
		}
	}

	opTok := c.peek()
	if opTok.kind != tIdent {
		return nil, fmt.Errorf("line %d: expected instruction, got %q", c.line, opTok.text)
	}
	c.i++
	op := opTok.text

	in := &ir.Instr{Pos: c.line}
	var resType ir.Type // type of results[0]
	var res2Type ir.Type

	switch {
	case op == "new":
		t, err := p.parseType(c)
		if err != nil {
			return nil, err
		}
		ct := ir.AsColl(t)
		if ct == nil {
			return nil, fmt.Errorf("line %d: new of non-collection type", c.line)
		}
		if err := c.expect("("); err != nil {
			return nil, err
		}
		if err := c.expect(")"); err != nil {
			return nil, err
		}
		if ct.Kind == ir.KEnum {
			in.Op = ir.OpNewEnum
		} else {
			in.Op = ir.OpNew
			in.Alloc = ct
		}
		in.Dir = p.pending
		p.pending = nil
		resType = ct

	case op == "enumglobal":
		domain := ir.Type(ir.TU64)
		if c.accept("<") {
			t, err := p.parseType(c)
			if err != nil {
				return nil, err
			}
			domain = t
			if err := c.expect(">"); err != nil {
				return nil, err
			}
		}
		g, err := c.expectKind(tAt)
		if err != nil {
			return nil, err
		}
		in.Op = ir.OpEnumGlobal
		in.Callee = g
		resType = ir.EnumOf(domain)

	case op == "call":
		callee, err := c.expectKind(tAt)
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgs(c)
		if err != nil {
			return nil, err
		}
		in.Args = args
		switch callee {
		case "enc":
			if err := checkArgs(c, "call @enc", args, 2, 2); err != nil {
				return nil, err
			}
			in.Op = ir.OpEncode
			resType = ir.TIdx
		case "dec":
			if err := checkArgs(c, "call @dec", args, 2, 2); err != nil {
				return nil, err
			}
			in.Op = ir.OpDecode
			if et := ir.AsColl(args[0].Base.Type); et != nil {
				resType = et.Key
			} else {
				resType = ir.TU64
			}
		case "add":
			if err := checkArgs(c, "call @add", args, 2, 2); err != nil {
				return nil, err
			}
			in.Op = ir.OpEnumAdd
			resType = args[0].Base.Type
			res2Type = ir.TIdx
		default:
			if err := checkArgs(c, "call", args, 0, -1); err != nil {
				return nil, err
			}
			in.Op = ir.OpCall
			in.Callee = callee
			rt, ok := p.sigs[callee]
			if !ok {
				return nil, fmt.Errorf("line %d: call to unknown @%s", c.line, callee)
			}
			if !ir.IsScalar(rt, ir.Void) {
				resType = rt
			}
		}

	case op == "ret":
		in.Op = ir.OpRet
		if c.peek().kind != tEOF {
			o, err := p.parseOperand(c)
			if err != nil {
				return nil, err
			}
			if err := checkArgs(c, "ret", []ir.Operand{o}, 1, 1); err != nil {
				return nil, err
			}
			in.Args = []ir.Operand{o}
		}

	case op == "roi":
		in.Op = ir.OpROI
		c.accept("(")
		c.accept(")")

	case op == "emit":
		in.Op = ir.OpEmit
		args, err := p.parseArgs(c)
		if err != nil {
			return nil, err
		}
		if err := checkArgs(c, "emit", args, 1, -1); err != nil {
			return nil, err
		}
		in.Args = args

	case op == "phi":
		in.Op = ir.OpPhi
		args, err := p.parseArgs(c)
		if err != nil {
			return nil, err
		}
		if err := checkArgs(c, "phi", args, 1, -1); err != nil {
			return nil, err
		}
		in.Args = args
		for _, a := range args {
			if t := operandType(a); t != nil {
				resType = t
				break
			}
		}
		if resType == nil && len(args) > 0 && args[0].Base != nil {
			resType = args[0].Base.Type // all-constant phi
		}
		if resType == nil {
			return nil, fmt.Errorf("line %d: cannot type phi (no typed operand)", c.line)
		}

	case op == "cast":
		if err := c.expect("<"); err != nil {
			return nil, err
		}
		t, err := p.parseType(c)
		if err != nil {
			return nil, err
		}
		if err := c.expect(">"); err != nil {
			return nil, err
		}
		args, err := p.parseArgs(c)
		if err != nil {
			return nil, err
		}
		if err := checkArgs(c, "cast", args, 1, 1); err != nil {
			return nil, err
		}
		in.Op = ir.OpCast
		in.CastTo = t
		in.Args = args
		resType = t

	case op == "tuple":
		args, err := p.parseArgs(c)
		if err != nil {
			return nil, err
		}
		if err := checkArgs(c, "tuple", args, 1, -1); err != nil {
			return nil, err
		}
		in.Op = ir.OpTuple
		in.Args = args
		types := make([]ir.Type, len(args))
		for i, a := range args {
			types[i] = a.InnerType()
		}
		resType = ir.TupleOf(types...)

	case op == "field":
		if err := c.expect("("); err != nil {
			return nil, err
		}
		o, err := p.parseOperand(c)
		if err != nil {
			return nil, err
		}
		if err := c.expect(","); err != nil {
			return nil, err
		}
		idxTok, err := c.expectKind(tInt)
		if err != nil {
			return nil, err
		}
		if err := c.expect(")"); err != nil {
			return nil, err
		}
		if err := checkArgs(c, "field", []ir.Operand{o}, 1, 1); err != nil {
			return nil, err
		}
		n := 0
		for _, ch := range idxTok {
			n = n*10 + int(ch-'0')
		}
		in.Op = ir.OpField
		in.FieldIdx = n
		in.Args = []ir.Operand{o}
		ct := ir.AsColl(o.InnerType())
		if ct == nil || ct.Kind != ir.KTuple || n >= len(ct.Flds) {
			return nil, fmt.Errorf("line %d: bad field access", c.line)
		}
		resType = ct.Flds[n]

	case op == "not":
		args, err := p.parseArgs(c)
		if err != nil {
			return nil, err
		}
		if err := checkArgs(c, "not", args, 1, 1); err != nil {
			return nil, err
		}
		in.Op = ir.OpNot
		in.Args = args
		resType = ir.TBool

	case op == "select":
		args, err := p.parseArgs(c)
		if err != nil {
			return nil, err
		}
		if err := checkArgs(c, "select", args, 3, 3); err != nil {
			return nil, err
		}
		in.Op = ir.OpSelect
		in.Args = args
		resType = operandType(args[1])
		if resType == nil {
			resType = operandType(args[2])
		}
		if resType == nil {
			resType = args[1].Base.Type // all-constant select
		}

	default:
		if bk, ok := ir.BinByName(op); ok {
			args, err := p.parseArgs(c)
			if err != nil {
				return nil, err
			}
			if err := checkArgs(c, op, args, 2, 2); err != nil {
				return nil, err
			}
			in.Op = ir.OpBin
			in.Bin = bk
			in.Args = args
			resType = operandType(args[0])
			if resType == nil {
				resType = operandType(args[1])
			}
			if resType == nil {
				resType = args[0].Base.Type // all-constant arithmetic
			}
			break
		}
		if ck, ok := ir.CmpByName(op); ok {
			args, err := p.parseArgs(c)
			if err != nil {
				return nil, err
			}
			if err := checkArgs(c, op, args, 2, 2); err != nil {
				return nil, err
			}
			in.Op = ir.OpCmp
			in.Cmp = ck
			in.Args = args
			resType = ir.TBool
			break
		}
		kind, ok := map[string]struct {
			op       ir.Opcode
			min, max int
		}{
			"read":   {ir.OpRead, 2, 2},
			"has":    {ir.OpHas, 2, 2},
			"size":   {ir.OpSize, 1, 1},
			"write":  {ir.OpWrite, 3, 3},
			"insert": {ir.OpInsert, 2, 3}, // (set/map, key) or (seq, pos, value)
			"remove": {ir.OpRemove, 2, 2},
			"clear":  {ir.OpClear, 1, 1},
			"union":  {ir.OpUnion, 2, 2},
		}[op]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown instruction %q", c.line, op)
		}
		collOp := kind.op
		args, err := p.parseArgs(c)
		if err != nil {
			return nil, err
		}
		endOK := []int{}
		if collOp == ir.OpInsert {
			endOK = append(endOK, 1) // insert(%seq, end, %v)
		}
		if err := checkArgs(c, op, args, kind.min, kind.max, endOK...); err != nil {
			return nil, err
		}
		in.Op = collOp
		in.Args = args
		ct := ir.AsColl(args[0].InnerType())
		if ct == nil {
			return nil, fmt.Errorf("line %d: %s on non-collection (is %%%s defined before use?)", c.line, op, args[0].Base.Name)
		}
		if collOp == ir.OpInsert && args[1].Base == nil && ct.Kind != ir.KSeq {
			return nil, fmt.Errorf("line %d: `end` insert position requires a Seq, not %v", c.line, ct)
		}
		switch collOp {
		case ir.OpRead:
			resType = ct.Elem
		case ir.OpHas:
			resType = ir.TBool
		case ir.OpSize:
			resType = ir.TU64
		default:
			// Updates return the new state of the base collection.
			resType = args[0].Base.Type
		}
	}

	p.coerceConsts(in)

	switch len(resNames) {
	case 0:
	case 1:
		if resType == nil {
			return nil, fmt.Errorf("line %d: instruction produces no result", c.line)
		}
		p.defineResult(resNames[0], in, resType)
	case 2:
		if in.Op != ir.OpEnumAdd {
			return nil, fmt.Errorf("line %d: only call @add returns two results", c.line)
		}
		p.defineResult(resNames[0], in, resType)
		p.defineResult(resNames[1], in, res2Type)
	}
	return in, nil
}

func operandType(o ir.Operand) ir.Type {
	if o.Base == nil {
		return nil
	}
	if o.Base.Kind == ir.VConst {
		return nil // default-typed constants defer to the other operand
	}
	return o.Base.Type
}

// coerceConsts retypes default-typed integer/float constants to match
// the concrete types their positions require, so `add(%x, 1)` works
// for any integer width.
func (p *parser) coerceConsts(in *ir.Instr) {
	retype := func(o *ir.Operand, t ir.Type) {
		st, ok := t.(*ir.ScalarType)
		if !ok || o.Base == nil || o.Base.Kind != ir.VConst {
			return
		}
		cst, _ := o.Base.Type.(*ir.ScalarType)
		if cst == nil || cst == st {
			return
		}
		// Only coerce the parser's default-typed literals.
		if cst.Kind != ir.U64 && cst.Kind != ir.I64 && cst.Kind != ir.F64 {
			return
		}
		nv := *o.Base
		nv.Type = st
		// Keep the value in the representation its new type reads.
		switch {
		case st.Kind == ir.F32 || st.Kind == ir.F64:
			if cst.Kind != ir.F64 {
				nv.ConstFlt = float64(int64(nv.ConstInt))
			}
		default:
			if cst.Kind == ir.F64 {
				nv.ConstInt = uint64(int64(nv.ConstFlt))
			}
		}
		o.Base = &nv
	}
	switch in.Op {
	case ir.OpBin, ir.OpCmp:
		t := operandType(in.Args[0])
		if t == nil {
			t = operandType(in.Args[1])
		}
		if t != nil {
			retype(&in.Args[0], t)
			retype(&in.Args[1], t)
		}
	case ir.OpSelect:
		t := operandType(in.Args[1])
		if t == nil {
			t = operandType(in.Args[2])
		}
		if t != nil {
			retype(&in.Args[1], t)
			retype(&in.Args[2], t)
		}
	case ir.OpPhi:
		var t ir.Type
		for _, a := range in.Args {
			if tt := operandType(a); tt != nil {
				t = tt
				break
			}
		}
		if t != nil {
			for i := range in.Args {
				retype(&in.Args[i], t)
			}
		}
	case ir.OpRead, ir.OpHas, ir.OpRemove, ir.OpInsert, ir.OpWrite:
		ct := ir.AsColl(in.Args[0].InnerType())
		if ct == nil {
			return
		}
		if len(in.Args) > 1 && ct.Assoc() {
			retype(&in.Args[1], ct.Key)
		}
		if in.Op == ir.OpWrite && len(in.Args) > 2 {
			retype(&in.Args[2], ct.Elem)
		}
		if in.Op == ir.OpInsert && ct.Kind == ir.KSeq && len(in.Args) > 2 {
			retype(&in.Args[2], ct.Elem)
		}
	}
}
