package parser

import (
	"fmt"
	"strconv"

	"memoir/internal/collections"
	"memoir/internal/ir"
)

// Parse reads a textual MEMOIR program. This is the compiler's only
// untrusted-input surface, so malformed input always comes back as a
// positioned error, never a panic: the grammar code reports errors
// directly, and a recover converts any internal invariant a malformed
// program still manages to violate into a positioned error as a last
// line of defense.
func Parse(src string) (prog *ir.Program, err error) {
	lines, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{lines: lines, prog: ir.NewProgram(), sigs: map[string]ir.Type{}}
	defer func() {
		if r := recover(); r != nil {
			prog, err = nil, fmt.Errorf("line %d: malformed input: %v", p.curLine(), r)
		}
	}()
	// Pre-scan function signatures so calls can be typed in any order.
	for _, l := range lines {
		if l.indent == 0 && len(l.toks) > 0 && l.toks[0].kind == tIdent && l.toks[0].text == "fn" {
			c := &cursor{toks: l.toks, line: l.num}
			c.next() // fn
			ret, err := p.parseType(c)
			if err != nil {
				return nil, err
			}
			name, err := c.expectKind(tAt)
			if err != nil {
				return nil, err
			}
			p.sigs[name] = ret
		}
	}
	for p.pos < len(p.lines) {
		if err := p.parseFunc(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

// MustParse parses or panics. It is for trusted, known-good sources
// only (tests and examples); external input goes through Parse.
func MustParse(src string) *ir.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lines []*line
	pos   int
	prog  *ir.Program
	sigs  map[string]ir.Type

	fn      *ir.Func
	vals    map[string]*ir.Value
	defined map[string]bool
	pending *ir.Directive
}

func (p *parser) peek() *line {
	if p.pos >= len(p.lines) {
		return nil
	}
	return p.lines[p.pos]
}

func (p *parser) next() *line {
	l := p.peek()
	p.pos++
	return l
}

// curLine is the source line the parser most recently consumed — the
// line a recovered panic should be attributed to.
func (p *parser) curLine() int {
	if p.pos > 0 && p.pos <= len(p.lines) {
		return p.lines[p.pos-1].num
	}
	if l := p.peek(); l != nil {
		return l.num
	}
	return 0
}

func (p *parser) errf(l *line, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.num, fmt.Sprintf(format, args...))
}

// cursor walks one line's tokens.
type cursor struct {
	toks []token
	i    int
	line int
}

func (c *cursor) peek() token {
	if c.i >= len(c.toks) {
		return token{kind: tEOF}
	}
	return c.toks[c.i]
}

func (c *cursor) next() token {
	t := c.peek()
	c.i++
	return t
}

func (c *cursor) at(text string) bool {
	t := c.peek()
	return (t.kind == tPunct || t.kind == tIdent) && t.text == text
}

func (c *cursor) accept(text string) bool {
	if c.at(text) {
		c.i++
		return true
	}
	return false
}

func (c *cursor) expect(text string) error {
	if !c.accept(text) {
		return fmt.Errorf("line %d: expected %q, got %q", c.line, text, c.peek().text)
	}
	return nil
}

func (c *cursor) expectKind(k tokKind) (string, error) {
	t := c.peek()
	if t.kind != k {
		return "", fmt.Errorf("line %d: unexpected token %q", c.line, t.text)
	}
	c.i++
	return t.text, nil
}

// --- types ---

func (p *parser) parseType(c *cursor) (ir.Type, error) {
	name, err := c.expectKind(tIdent)
	if err != nil {
		return nil, err
	}
	if st, ok := ir.ScalarByName(name); ok {
		return st, nil
	}
	var kind ir.CollKind
	switch name {
	case "Seq":
		kind = ir.KSeq
	case "Set":
		kind = ir.KSet
	case "Map":
		kind = ir.KMap
	case "Tuple":
		kind = ir.KTuple
	case "Enum":
		kind = ir.KEnum
	default:
		return nil, fmt.Errorf("line %d: unknown type %q", c.line, name)
	}
	ct := &ir.CollType{Kind: kind}
	if c.accept("{") {
		sel, err := c.expectKind(tIdent)
		if err != nil {
			return nil, err
		}
		impl, ok := collections.ParseImpl(sel)
		if !ok {
			return nil, fmt.Errorf("line %d: unknown selection %q", c.line, sel)
		}
		ct.Sel = impl
		if err := c.expect("}"); err != nil {
			return nil, err
		}
	}
	if kind == ir.KEnum && !c.at("<") {
		ct.Key = ir.TU64
		return ct, nil
	}
	if err := c.expect("<"); err != nil {
		return nil, err
	}
	var args []ir.Type
	for {
		t, err := p.parseType(c)
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if !c.accept(",") {
			break
		}
	}
	if err := c.expect(">"); err != nil {
		return nil, err
	}
	switch kind {
	case ir.KSeq:
		ct.Elem = args[0]
	case ir.KSet, ir.KEnum:
		ct.Key = args[0]
	case ir.KMap:
		if len(args) != 2 {
			return nil, fmt.Errorf("line %d: Map needs <key,value>", c.line)
		}
		ct.Key, ct.Elem = args[0], args[1]
	case ir.KTuple:
		ct.Flds = args
	}
	return ct, nil
}

// --- values and operands ---

func (p *parser) value(name string) *ir.Value {
	if v, ok := p.vals[name]; ok {
		return v
	}
	v := &ir.Value{Name: name, Kind: ir.VResult}
	p.vals[name] = v
	return v
}

func (p *parser) define(name string, v *ir.Value) {
	p.vals[name] = v
	p.defined[name] = true
}

// defineResult binds an existing placeholder (or creates the value) as
// the instruction's next result.
func (p *parser) defineResult(name string, in *ir.Instr, t ir.Type) *ir.Value {
	v := p.value(name)
	v.Kind = ir.VResult
	v.Def = in
	v.ResIdx = len(in.Results)
	v.Type = t
	in.Results = append(in.Results, v)
	p.defined[name] = true
	return v
}

func (p *parser) parseConst(c *cursor) (*ir.Value, bool, error) {
	t := c.peek()
	switch t.kind {
	case tInt:
		c.i++
		if t.text[0] == '-' {
			x, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return nil, false, fmt.Errorf("line %d: bad integer %q", c.line, t.text)
			}
			return ir.ConstInt(ir.TI64, uint64(x)), true, nil
		}
		x, err := strconv.ParseUint(t.text, 10, 64)
		if err != nil {
			return nil, false, fmt.Errorf("line %d: bad integer %q", c.line, t.text)
		}
		return ir.ConstInt(ir.TU64, x), true, nil
	case tFloat:
		c.i++
		x, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, false, fmt.Errorf("line %d: bad float %q", c.line, t.text)
		}
		return ir.ConstFloat(ir.TF64, x), true, nil
	case tString:
		c.i++
		return ir.ConstString(t.text), true, nil
	case tIdent:
		switch t.text {
		case "true":
			c.i++
			return ir.ConstBool(true), true, nil
		case "false":
			c.i++
			return ir.ConstBool(false), true, nil
		}
	}
	return nil, false, nil
}

// parseOperand reads value/const with an optional [index] path, or the
// bare `end` marker.
func (p *parser) parseOperand(c *cursor) (ir.Operand, error) {
	var o ir.Operand
	t := c.peek()
	switch {
	case t.kind == tValue:
		c.i++
		o.Base = p.value(t.text)
	case t.kind == tIdent && t.text == "end":
		c.i++
		o.Path = append(o.Path, ir.Index{Kind: ir.IdxEnd})
		return o, nil
	default:
		cv, ok, err := p.parseConst(c)
		if err != nil {
			return o, err
		}
		if !ok {
			return o, fmt.Errorf("line %d: expected operand, got %q", c.line, t.text)
		}
		o.Base = cv
	}
	for c.accept("[") {
		it := c.peek()
		switch {
		case it.kind == tValue:
			c.i++
			o.Path = append(o.Path, ir.Index{Kind: ir.IdxValue, Val: p.value(it.text)})
		case it.kind == tInt:
			c.i++
			n, _ := strconv.ParseUint(it.text, 10, 64)
			o.Path = append(o.Path, ir.Index{Kind: ir.IdxConst, Num: n})
		case it.kind == tIdent && it.text == "end":
			c.i++
			o.Path = append(o.Path, ir.Index{Kind: ir.IdxEnd})
		default:
			return o, fmt.Errorf("line %d: bad index %q", c.line, it.text)
		}
		if err := c.expect("]"); err != nil {
			return o, err
		}
	}
	return o, nil
}

func (p *parser) parseArgs(c *cursor) ([]ir.Operand, error) {
	if err := c.expect("("); err != nil {
		return nil, err
	}
	var args []ir.Operand
	if !c.at(")") {
		for {
			o, err := p.parseOperand(c)
			if err != nil {
				return nil, err
			}
			args = append(args, o)
			if !c.accept(",") {
				break
			}
		}
	}
	return args, c.expect(")")
}
