package parser

import (
	"math/rand"
	"os"
	"regexp"
	"testing"
)

// The parser is the compiler's only untrusted-input surface: whatever
// a .mir file contains, Parse must return a positioned error, never
// panic. Every case here either truncates a construct mid-way, breaks
// an arity, or misplaces the `end` marker — shapes that random
// mutation of the shipped programs actually produces.

var malformedCases = []struct {
	name, src string
}{
	{"bare-fn", "fn"},
	{"fn-no-name", "fn u64"},
	{"fn-no-colon", "fn u64 @f\n  ret"},
	{"truncated-operand", "fn u64 @f(%x: u64):\n  %y := add(%x, "},
	{"if-no-cond", "fn u64 @f():\n  if"},
	{"foreach-no-header", "fn u64 @f():\n  foreach"},
	{"indented-start", "  indented"},
	{"new-trailing", "fn u64 @f():\n  %c := new Set<u64> impl"},
	{"call-unclosed", "fn u64 @f():\n  call @g("},
	{"tab-indent", "fn u64 @f():\n\tmix"},
	{"type-unclosed", "fn Set<"},
	{"phi-unclosed", "fn u64 @f():\n  %x := phi ["},
	{"stray-pragma", "#pragma"},

	{"cmp-one-arg", "fn u64 @main(): exported\n  do:\n    %i := phi(0, %i1)\n    %more := lt(%i)\n  while %more\n  ret 0\n"},
	{"bin-one-arg", "fn u64 @main(): exported\n  %a := add(%a)\n  ret %a\n"},
	{"bin-three-args", "fn u64 @main(): exported\n  %a := add(1, 2, 3)\n  ret %a\n"},
	{"select-two-args", "fn u64 @main(): exported\n  %a := select(true, 1)\n  ret %a\n"},
	{"not-zero-args", "fn u64 @main(): exported\n  %a := not()\n  ret 0\n"},
	{"read-one-arg", "fn u64 @main(): exported\n  %s := new Seq<u64>()\n  %v := read(%s)\n  ret %v\n"},
	{"write-two-args", "fn u64 @main(): exported\n  %m := new Map<u64,u64>()\n  %m1 := write(%m, 1)\n  ret 0\n"},
	{"union-one-arg", "fn u64 @main(): exported\n  %s := new Set<u64>()\n  %u := union(%s)\n  ret 0\n"},
	{"size-zero-args", "fn u64 @main(): exported\n  %n := size()\n  ret %n\n"},
	{"enc-one-arg", "fn u64 @main(): exported\n  %e := enumglobal @g\n  %i := call @enc(%e)\n  ret 0\n"},
	{"dec-end-arg", "fn u64 @main(): exported\n  %e := enumglobal @g\n  %k := call @dec(end, end)\n  ret 0\n"},
	{"add-zero-args", "fn u64 @main(): exported\n  (%e1, %i) := call @add()\n  ret 0\n"},
	{"ret-end", "fn u64 @main(): exported\n  ret end\n"},
	{"emit-end", "fn u64 @main(): exported\n  emit(end)\n  ret 0\n"},
	{"cast-zero-args", "fn u64 @main(): exported\n  %x := cast<u64>()\n  ret %x\n"},
	{"field-end", "fn u64 @main(): exported\n  %x := field(end, 0)\n  ret %x\n"},
	{"tuple-end", "fn u64 @main(): exported\n  %t := tuple(end)\n  ret 0\n"},
	{"phi-end", "fn u64 @main(): exported\n  %x := phi(end, 1)\n  ret %x\n"},
	{"insert-end-on-set", "fn u64 @main(): exported\n  %s := new Set<u64>()\n  %s1 := insert(%s, end)\n  ret 0\n"},
}

var positioned = regexp.MustCompile(`^line \d+: `)

func TestMalformedInputErrors(t *testing.T) {
	for _, tc := range malformedCases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked: %v", r)
				}
			}()
			prog, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted malformed input (prog=%v)", prog)
			}
			if !positioned.MatchString(err.Error()) {
				t.Fatalf("error not positioned: %q", err)
			}
		})
	}
}

// TestParseNeverPanics hammers Parse with deterministic random
// mutations of the shipped example programs. It is a regression net
// for the recover in Parse: any escaping panic — whatever invariant a
// mutant violates — fails the test.
func TestParseNeverPanics(t *testing.T) {
	var seeds []string
	for _, f := range []string{"../../testdata/histogram.mir", "../../testdata/pta.mir"} {
		if b, err := os.ReadFile(f); err == nil {
			seeds = append(seeds, string(b))
		}
	}
	if len(seeds) == 0 {
		t.Skip("no seed programs found")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		s := []byte(seeds[rng.Intn(len(seeds))])
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				if len(s) > 0 {
					s[rng.Intn(len(s))] = byte(rng.Intn(128))
				}
			case 1: // delete a span
				if len(s) > 2 {
					a := rng.Intn(len(s))
					b := a + rng.Intn(len(s)-a)
					s = append(s[:a], s[b:]...)
				}
			case 2: // duplicate a span
				if len(s) > 2 {
					a := rng.Intn(len(s))
					b := a + rng.Intn(len(s)-a)
					s = append(s[:b], append([]byte{}, s[a:]...)...)
				}
			}
		}
		src := string(s)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on mutant %d: %v\ninput: %q", i, r, src)
				}
			}()
			Parse(src)
		}()
	}
}
