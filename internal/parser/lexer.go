// Package parser reads the textual MEMOIR format of the paper's
// Figures 1 and 2 — indentation-structured functions with SSA values,
// first-class collection types, positional phis, and `#pragma ade`
// optimization directives (Listing 5). ir.Print output round-trips
// through this parser.
package parser

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tEOF    tokKind = iota
	tIdent          // fn, if, for, read, Seq, ...
	tValue          // %name
	tAt             // @name
	tPragma         // #pragma
	tInt            // 123
	tFloat          // 1.5
	tString         // "..."
	tPunct          // ( ) [ ] { } < > , : . :=
)

type token struct {
	kind tokKind
	text string
}

type line struct {
	num    int
	indent int
	toks   []token
}

// lexLine tokenizes one source line (indentation already stripped).
func lexLine(num int, s string) (*line, error) {
	l := &line{num: num}
	i := 0
	n := len(s)
	emit := func(k tokKind, t string) { l.toks = append(l.toks, token{k, t}) }
	isIdent := func(c byte) bool {
		return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
	}
	for i < n {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '/' && i+1 < n && s[i+1] == '/':
			i = n // comment
		case c == '#':
			if strings.HasPrefix(s[i:], "#pragma") {
				emit(tPragma, "#pragma")
				i += len("#pragma")
			} else {
				i = n // comment
			}
		case c == '%':
			// Dots are part of value names (%t.3, %id.ade2); tuple
			// field access is not expressible in the textual form.
			j := i + 1
			for j < n && (isIdent(s[j]) || s[j] == '.') {
				j++
			}
			emit(tValue, s[i+1:j])
			i = j
		case c == '@':
			j := i + 1
			for j < n && (isIdent(s[j]) || s[j] == '.') {
				j++
			}
			emit(tAt, s[i+1:j])
			i = j
		case c == '"':
			j := i + 1
			for j < n && s[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("line %d: unterminated string", num)
			}
			emit(tString, s[i+1:j])
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i + 1
			isFloat := false
			for j < n && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == '-' && (s[j-1] == 'e')) {
				if s[j] == '.' || s[j] == 'e' {
					isFloat = true
				}
				j++
			}
			if isFloat {
				emit(tFloat, s[i:j])
			} else {
				emit(tInt, s[i:j])
			}
			i = j
		case isIdent(c):
			j := i + 1
			for j < n && isIdent(s[j]) {
				j++
			}
			emit(tIdent, s[i:j])
			i = j
		case c == ':' && i+1 < n && s[i+1] == '=':
			emit(tPunct, ":=")
			i += 2
		case strings.ContainsRune("()[]{}<>,:.", rune(c)):
			emit(tPunct, string(c))
			i++
		default:
			return nil, fmt.Errorf("line %d: unexpected character %q", num, c)
		}
	}
	return l, nil
}

// lex splits source text into indented token lines, skipping blanks.
func lex(src string) ([]*line, error) {
	var out []*line
	for num, raw := range strings.Split(src, "\n") {
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		body := strings.TrimRight(raw[indent:], " \t\r")
		if body == "" {
			continue
		}
		l, err := lexLine(num+1, body)
		if err != nil {
			return nil, err
		}
		if len(l.toks) == 0 {
			continue
		}
		l.indent = indent / 2
		out = append(out, l)
	}
	return out, nil
}
