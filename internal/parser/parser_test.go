package parser

import (
	"strings"
	"testing"

	"memoir/internal/bench"
	"memoir/internal/collections"
	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
)

const histSrc = `
fn u64 @count(%input: Seq<u64>): exported
  %hist := new Map<u64,u32>()
  for [%i, %val] in %input:
    %hist0 := phi(%hist, %hist3)
    %cond := has(%hist0, %val)
    if %cond:
      %freq := read(%hist0, %val)
    else:
      %hist1 := insert(%hist0, %val)
    %freq0 := phi(%freq, 0)
    %hist2 := phi(%hist0, %hist1)
    %freq1 := add(%freq0, 1)
    %hist3 := write(%hist2, %val, %freq1)
  %histF := phi(%hist0)
  %n := size(%histF)
  emit(%n)
  ret %n
`

func TestParseHistogram(t *testing.T) {
	prog, err := Parse(histSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(prog); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.Print(prog))
	}
	fn := prog.Func("count")
	if fn == nil || !fn.Exported || len(fn.Params) != 1 {
		t.Fatal("function header parsed wrong")
	}
	ip := interp.New(prog, interp.DefaultOptions())
	seq := ip.NewColl(ir.SeqOf(ir.TU64)).(interp.RSeq)
	for _, v := range []uint64{5, 7, 5, 5, 11} {
		seq.Append(interp.IntV(v))
	}
	ret, err := ip.Run("count", interp.CollV(seq.(interp.Coll)))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if ret.I != 3 {
		t.Fatalf("distinct = %d, want 3", ret.I)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"undefined value": `
fn void @f():
  %x := add(%ghost, 1)
  ret
`,
		"phi outside structure": `
fn void @f():
  %x := phi(1, 2)
  ret
`,
		"do without while": `
fn void @f():
  do:
    %x := add(1, 2)
  ret
`,
		"unknown instruction": `
fn void @f():
  frobnicate(%x)
  ret
`,
		"unknown type": `
fn void @f(%x: Wibble<u64>):
  ret
`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse accepted invalid program", name)
		}
	}
}

func TestParsePragma(t *testing.T) {
	src := `
fn void @f():
  #pragma ade enumerate noshare select(SparseBitSet) inner( noenumerate )
  %s := new Set<u64>()
  %s1 := insert(%s, 42)
  ret
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	allocs := ir.Allocations(prog.Func("f"))
	if len(allocs) != 1 || allocs[0].Dir == nil {
		t.Fatal("directive not attached")
	}
	d := allocs[0].Dir
	if !d.Enumerate || !d.NoShare || d.Select != collections.ImplSparseBitSet {
		t.Fatalf("directive fields wrong: %+v", d)
	}
	if d.Inner == nil || !d.Inner.NoEnumerate {
		t.Fatal("inner directive wrong")
	}
}

func TestParseShareGroupAndEnumOps(t *testing.T) {
	src := `
fn u64 @f(%xs: Seq<u64>):
  #pragma ade share group("g1")
  %a := new Set<u64>()
  %e := new Enum<u64>()
  (%e1, %id) := call @add(%e, 7)
  %v := call @dec(%e1, %id)
  %id2 := call @enc(%e1, %v)
  %g := enumglobal @ade9
  %a1 := insert(%a, %v)
  %n := size(%a1)
  ret %n
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(prog); err != nil {
		t.Fatalf("verify: %v", err)
	}
	allocs := ir.Allocations(prog.Func("f"))
	if allocs[0].Dir == nil || allocs[0].Dir.ShareGroup != "g1" {
		t.Fatal("share group lost")
	}
	ip := interp.New(prog, interp.DefaultOptions())
	seq := ip.NewColl(ir.SeqOf(ir.TU64))
	ret, err := ip.Run("f", interp.CollV(seq))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if ret.I != 1 {
		t.Fatalf("ret = %d", ret.I)
	}
}

// TestRoundTripSuite: every benchmark program — and its
// ADE-transformed form — must survive Print -> Parse -> Verify and
// produce identical output when executed.
func TestRoundTripSuite(t *testing.T) {
	for _, s := range bench.All() {
		s := s
		t.Run(s.Abbr, func(t *testing.T) {
			for _, transformed := range []bool{false, true} {
				prog := s.Build("")
				if transformed {
					if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
						t.Fatalf("ADE: %v", err)
					}
				}
				ref, err := bench.Execute(s, prog, interp.DefaultOptions(), bench.ScaleTest)
				if err != nil {
					t.Fatalf("run original: %v", err)
				}
				text := ir.Print(prog)
				reparsed, err := Parse(text)
				if err != nil {
					t.Fatalf("reparse (transformed=%v): %v\n%s", transformed, err, text)
				}
				if err := ir.Verify(reparsed); err != nil {
					t.Fatalf("verify reparsed: %v", err)
				}
				got, err := bench.Execute(s, reparsed, interp.DefaultOptions(), bench.ScaleTest)
				if err != nil {
					t.Fatalf("run reparsed: %v", err)
				}
				if got.EmitSum != ref.EmitSum || got.Ret != ref.Ret {
					t.Fatalf("round-trip changed output (transformed=%v): %d vs %d", transformed, got.Ret, ref.Ret)
				}
				// Second print must be stable.
				if again := ir.Print(reparsed); again != text {
					idx := 0
					for idx < len(again) && idx < len(text) && again[idx] == text[idx] {
						idx++
					}
					lo := idx - 40
					if lo < 0 {
						lo = 0
					}
					t.Fatalf("print not idempotent near %q vs %q",
						clip(text, lo, idx+40), clip(again, lo, idx+40))
				}
			}
		})
	}
}

func clip(s string, lo, hi int) string {
	if hi > len(s) {
		hi = len(s)
	}
	if lo > len(s) {
		lo = len(s)
	}
	return strings.ReplaceAll(s[lo:hi], "\n", "\\n")
}
