package parser

import (
	"os"
	"path/filepath"
	"testing"

	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
)

// The checked-in sample programs must parse, verify, transform, and
// produce ADE-invariant output.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("../../testdata/*.mir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			run := func(ade bool) (uint64, uint64) {
				prog, err := Parse(string(src))
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				if err := ir.Verify(prog); err != nil {
					t.Fatalf("verify: %v", err)
				}
				if ade {
					if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
						t.Fatalf("ADE: %v", err)
					}
					if err := ir.Verify(prog); err != nil {
						t.Fatalf("verify after ADE: %v", err)
					}
				}
				// Entry params (e.g. coldmap.mir's runtime verbosity
				// switch) get zero values.
				var args []interp.Val
				for range prog.Funcs["main"].Params {
					args = append(args, interp.IntV(0))
				}
				ip := interp.New(prog, interp.DefaultOptions())
				ret, err := ip.Run("main", args...)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return ret.I, ip.Stats.EmitSum
			}
			r1, s1 := run(false)
			r2, s2 := run(true)
			if r1 != r2 || s1 != s2 {
				t.Fatalf("ADE changed output: %d vs %d", r1, r2)
			}
		})
	}
}
