package parser

import (
	"fmt"

	"memoir/internal/collections"
	"memoir/internal/ir"
)

// parseFunc reads one `fn T @name(params):` plus its body.
func (p *parser) parseFunc() error {
	l := p.next()
	c := &cursor{toks: l.toks, line: l.num}
	if err := c.expect("fn"); err != nil {
		return err
	}
	ret, err := p.parseType(c)
	if err != nil {
		return err
	}
	name, err := c.expectKind(tAt)
	if err != nil {
		return err
	}
	fn := &ir.Func{Name: name, Ret: ret, Body: &ir.Block{}, Pos: l.num}
	p.fn = fn
	p.vals = map[string]*ir.Value{}
	p.defined = map[string]bool{}
	if err := c.expect("("); err != nil {
		return err
	}
	for !c.at(")") {
		pname, err := c.expectKind(tValue)
		if err != nil {
			return err
		}
		if err := c.expect(":"); err != nil {
			return err
		}
		pt, err := p.parseType(c)
		if err != nil {
			return err
		}
		v := &ir.Value{Name: pname, Type: pt, Kind: ir.VParam, ParamIdx: len(fn.Params)}
		fn.Params = append(fn.Params, v)
		p.define(pname, v)
		if !c.accept(",") {
			break
		}
	}
	if err := c.expect(")"); err != nil {
		return err
	}
	if err := c.expect(":"); err != nil {
		return err
	}
	if c.accept("exported") {
		fn.Exported = true
	}
	blk, err := p.parseBlock(1)
	if err != nil {
		return err
	}
	fn.Body = blk
	for name := range p.vals {
		if !p.defined[name] {
			return fmt.Errorf("@%s: value %%%s used but never defined", fn.Name, name)
		}
	}
	p.prog.Add(fn)
	return nil
}

// parseBlock consumes statements at the given indent level.
func (p *parser) parseBlock(indent int) (*ir.Block, error) {
	blk := &ir.Block{}
	for {
		l := p.peek()
		if l == nil || l.indent < indent {
			return blk, nil
		}
		if l.indent > indent {
			return nil, p.errf(l, "unexpected indentation")
		}
		c := &cursor{toks: l.toks, line: l.num}
		t := c.peek()
		switch {
		case t.kind == tPragma:
			p.next()
			c.next()
			d, err := p.parsePragma(c)
			if err != nil {
				return nil, err
			}
			p.pending = d
		case t.kind == tIdent && t.text == "if":
			n, err := p.parseIf(indent)
			if err != nil {
				return nil, err
			}
			blk.Append(n)
			if err := p.attachExitPhis(indent, &n.ExitPhis, ir.PhiIfExit); err != nil {
				return nil, err
			}
		case t.kind == tIdent && t.text == "for":
			n, err := p.parseForEach(indent)
			if err != nil {
				return nil, err
			}
			blk.Append(n)
			if err := p.attachExitPhis(indent, &n.ExitPhis, ir.PhiLoopExit); err != nil {
				return nil, err
			}
		case t.kind == tIdent && t.text == "do":
			n, err := p.parseDoWhile(indent)
			if err != nil {
				return nil, err
			}
			blk.Append(n)
			if err := p.attachExitPhis(indent, &n.ExitPhis, ir.PhiLoopExit); err != nil {
				return nil, err
			}
		case t.kind == tIdent && (t.text == "else" || t.text == "while"):
			// Terminates this block; handled by the caller.
			return blk, nil
		default:
			p.next()
			in, err := p.parseInstr(c)
			if err != nil {
				return nil, err
			}
			if in.Op == ir.OpPhi {
				return nil, p.errf(l, "phi outside a structural position")
			}
			blk.Append(in)
		}
	}
}

// attachExitPhis pulls trailing phi lines at the same indent into the
// construct's exit-phi list.
func (p *parser) attachExitPhis(indent int, dst *[]*ir.Instr, role ir.PhiRole) error {
	for {
		l := p.peek()
		if l == nil || l.indent != indent || !isPhiLine(l) {
			return nil
		}
		p.next()
		c := &cursor{toks: l.toks, line: l.num}
		in, err := p.parseInstr(c)
		if err != nil {
			return err
		}
		in.PhiRole = role
		*dst = append(*dst, in)
	}
}

func isPhiLine(l *line) bool {
	// %x := phi(...) — or (%a,%b) := never applies to phis.
	for i, t := range l.toks {
		if t.kind == tPunct && t.text == ":=" {
			return i+1 < len(l.toks) && l.toks[i+1].kind == tIdent && l.toks[i+1].text == "phi"
		}
	}
	return false
}

// stripHeaderPhis removes leading phi instructions from a freshly
// parsed loop body and re-roles them.
func stripHeaderPhis(b *ir.Block) []*ir.Instr {
	var hdr []*ir.Instr
	for len(b.Nodes) > 0 {
		in, ok := b.Nodes[0].(*ir.Instr)
		if !ok || in.Op != ir.OpPhi {
			break
		}
		in.PhiRole = ir.PhiLoopHeader
		hdr = append(hdr, in)
		b.Nodes = b.Nodes[1:]
	}
	return hdr
}

func (p *parser) parseIf(indent int) (*ir.If, error) {
	l := p.next()
	c := &cursor{toks: l.toks, line: l.num}
	c.next() // if
	cond, err := p.parseOperand(c)
	if err != nil {
		return nil, err
	}
	if err := c.expect(":"); err != nil {
		return nil, err
	}
	n := &ir.If{Cond: cond.Base, Else: &ir.Block{}, Pos: l.num}
	n.Then, err = p.parseBlockAllowingPhis(indent + 1)
	if err != nil {
		return nil, err
	}
	if el := p.peek(); el != nil && el.indent == indent && len(el.toks) > 0 &&
		el.toks[0].kind == tIdent && el.toks[0].text == "else" {
		p.next()
		n.Else, err = p.parseBlockAllowingPhis(indent + 1)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// parseBlockAllowingPhis is parseBlock for branch/loop bodies, where
// leading phis (loop headers) are legal and handled by the caller.
func (p *parser) parseBlockAllowingPhis(indent int) (*ir.Block, error) {
	blk := &ir.Block{}
	// Leading phi lines.
	for {
		l := p.peek()
		if l == nil || l.indent != indent || !isPhiLine(l) {
			break
		}
		p.next()
		c := &cursor{toks: l.toks, line: l.num}
		in, err := p.parseInstr(c)
		if err != nil {
			return nil, err
		}
		blk.Append(in)
	}
	rest, err := p.parseBlock(indent)
	if err != nil {
		return nil, err
	}
	blk.Nodes = append(blk.Nodes, rest.Nodes...)
	return blk, nil
}

func (p *parser) parseForEach(indent int) (*ir.ForEach, error) {
	l := p.next()
	c := &cursor{toks: l.toks, line: l.num}
	c.next() // for
	if err := c.expect("["); err != nil {
		return nil, err
	}
	kName, err := c.expectKind(tValue)
	if err != nil {
		return nil, err
	}
	if err := c.expect(","); err != nil {
		return nil, err
	}
	vName, err := c.expectKind(tValue)
	if err != nil {
		return nil, err
	}
	if err := c.expect("]"); err != nil {
		return nil, err
	}
	if err := c.expect("in"); err != nil {
		return nil, err
	}
	coll, err := p.parseOperand(c)
	if err != nil {
		return nil, err
	}
	if err := c.expect(":"); err != nil {
		return nil, err
	}
	ct := ir.AsColl(coll.InnerType())
	if ct == nil {
		return nil, p.errf(l, "for-each over non-collection")
	}
	var kt, vt ir.Type
	switch ct.Kind {
	case ir.KSeq:
		kt, vt = ir.TU64, ct.Elem
	case ir.KSet:
		kt, vt = ct.Key, ct.Key
	case ir.KMap:
		kt, vt = ct.Key, ct.Elem
	default:
		return nil, p.errf(l, "for-each over %v", ct)
	}
	n := &ir.ForEach{Coll: coll, Pos: l.num}
	n.Key = &ir.Value{Name: kName, Type: kt, Kind: ir.VParam}
	n.Val = &ir.Value{Name: vName, Type: vt, Kind: ir.VParam}
	p.define(kName, n.Key)
	p.define(vName, n.Val)
	body, err := p.parseBlockAllowingPhis(indent + 1)
	if err != nil {
		return nil, err
	}
	n.HeaderPhis = stripHeaderPhis(body)
	n.Body = body
	return n, nil
}

func (p *parser) parseDoWhile(indent int) (*ir.DoWhile, error) {
	l := p.next()
	c := &cursor{toks: l.toks, line: l.num}
	c.next() // do
	if err := c.expect(":"); err != nil {
		return nil, err
	}
	body, err := p.parseBlockAllowingPhis(indent + 1)
	if err != nil {
		return nil, err
	}
	n := &ir.DoWhile{HeaderPhis: stripHeaderPhis(body), Body: body, Pos: l.num}
	wl := p.peek()
	if wl == nil || wl.indent != indent || wl.toks[0].text != "while" {
		return nil, p.errf(l, "do block without a matching while")
	}
	p.next()
	wc := &cursor{toks: wl.toks, line: wl.num}
	wc.next() // while
	cond, err := p.parseOperand(wc)
	if err != nil {
		return nil, err
	}
	n.Cond = cond.Base
	return n, nil
}

// parsePragma reads `ade <directives...>` after the #pragma token.
func (p *parser) parsePragma(c *cursor) (*ir.Directive, error) {
	if err := c.expect("ade"); err != nil {
		return nil, err
	}
	return p.parseDirectives(c)
}

func (p *parser) parseDirectives(c *cursor) (*ir.Directive, error) {
	d := &ir.Directive{Pos: c.line}
	for {
		t := c.peek()
		if t.kind != tIdent {
			return d, nil
		}
		switch t.text {
		case "enumerate":
			c.i++
			d.Enumerate = true
		case "noenumerate":
			c.i++
			d.NoEnumerate = true
		case "noshare":
			c.i++
			if c.accept("(") {
				n, err := c.expectKind(tValue)
				if err != nil {
					// allow bare identifiers too
					n2, err2 := c.expectKind(tIdent)
					if err2 != nil {
						return nil, err
					}
					n = n2
				}
				d.NoShareWith = append(d.NoShareWith, n)
				if err := c.expect(")"); err != nil {
					return nil, err
				}
			} else {
				d.NoShare = true
			}
		case "share":
			c.i++
			if err := c.expect("group"); err != nil {
				return nil, err
			}
			if err := c.expect("("); err != nil {
				return nil, err
			}
			g, err := c.expectKind(tString)
			if err != nil {
				return nil, err
			}
			d.ShareGroup = g
			if err := c.expect(")"); err != nil {
				return nil, err
			}
		case "select":
			c.i++
			if err := c.expect("("); err != nil {
				return nil, err
			}
			n, err := c.expectKind(tIdent)
			if err != nil {
				return nil, err
			}
			impl, ok := collections.ParseImpl(n)
			if !ok {
				return nil, fmt.Errorf("line %d: unknown implementation %q", c.line, n)
			}
			d.Select = impl
			if err := c.expect(")"); err != nil {
				return nil, err
			}
		case "inner":
			c.i++
			if err := c.expect("("); err != nil {
				return nil, err
			}
			inner, err := p.parseDirectives(c)
			if err != nil {
				return nil, err
			}
			d.Inner = inner
			if err := c.expect(")"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", c.line, t.text)
		}
	}
}
