package cluster

import (
	"testing"
)

func TestAgglomerateGroupsObviousClusters(t *testing.T) {
	items := map[string][]float64{
		"a1": {1, 0, 0},
		"a2": {0.9, 0.1, 0},
		"b1": {0, 1, 0},
		"b2": {0, 0.9, 0.1},
		"c1": {0, 0, 1},
	}
	root := Agglomerate(items)
	if len(root.Leaves()) != 5 {
		t.Fatalf("leaves=%v", root.Leaves())
	}
	cut := Cut(root, 0.5)
	byName := map[string][]string{}
	for _, grp := range cut {
		for _, n := range grp {
			byName[n] = grp
		}
	}
	sameGroup := func(x, y string) bool {
		gx := byName[x]
		for _, n := range gx {
			if n == y {
				return true
			}
		}
		return false
	}
	if !sameGroup("a1", "a2") || !sameGroup("b1", "b2") {
		t.Fatalf("obvious pairs not clustered: %v", cut)
	}
	if sameGroup("a1", "b1") || sameGroup("a1", "c1") {
		t.Fatalf("distinct clusters merged at low threshold: %v", cut)
	}
}

func TestRenderContainsLeaves(t *testing.T) {
	root := Agglomerate(map[string][]float64{
		"x": {0}, "y": {1},
	})
	s := Render(root)
	for _, want := range []string{"- x", "- y", "+ (d="} {
		if !containsStr(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEuclidean(t *testing.T) {
	if d := Euclidean([]float64{0, 3}, []float64{4, 0}); d != 5 {
		t.Fatalf("d=%f", d)
	}
}

func TestSingleLeaf(t *testing.T) {
	root := Agglomerate(map[string][]float64{"only": {1, 2}})
	if !root.Leaf() || root.Name != "only" {
		t.Fatal("single-item clustering wrong")
	}
}
