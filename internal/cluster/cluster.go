// Package cluster implements average-linkage agglomerative
// hierarchical clustering over feature vectors. The paper's Figure 4
// clusters benchmarks by their dynamic collection-operation breakdown;
// this package regenerates that dendrogram.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Node is a dendrogram node: either a leaf (Name set) or an internal
// merge of Left and Right at the given Distance.
type Node struct {
	Name        string
	Left, Right *Node
	Distance    float64
	size        int
}

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.Left == nil }

// Leaves returns the leaf names in dendrogram order.
func (n *Node) Leaves() []string {
	if n.Leaf() {
		return []string{n.Name}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// Euclidean computes the L2 distance between two vectors.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Agglomerate clusters the named vectors with average linkage (UPGMA),
// returning the dendrogram root. Names and vectors must align. Input
// order is made deterministic by sorting names first.
func Agglomerate(items map[string][]float64) *Node {
	names := make([]string, 0, len(items))
	for n := range items {
		names = append(names, n)
	}
	sort.Strings(names)
	var active []*Node
	vecs := map[*Node][]float64{}
	for _, n := range names {
		nd := &Node{Name: n, size: 1}
		active = append(active, nd)
		vecs[nd] = items[n]
	}
	// Pairwise average-linkage distance, computed from cluster member
	// leaves.
	leafVec := map[string][]float64{}
	for _, n := range names {
		leafVec[n] = items[n]
	}
	dist := func(a, b *Node) float64 {
		al, bl := a.Leaves(), b.Leaves()
		s := 0.0
		for _, x := range al {
			for _, y := range bl {
				s += Euclidean(leafVec[x], leafVec[y])
			}
		}
		return s / float64(len(al)*len(bl))
	}
	for len(active) > 1 {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if d := dist(active[i], active[j]); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		merged := &Node{
			Left: active[bi], Right: active[bj], Distance: bd,
			size: active[bi].size + active[bj].size,
		}
		next := make([]*Node, 0, len(active)-1)
		for k, n := range active {
			if k != bi && k != bj {
				next = append(next, n)
			}
		}
		active = append(next, merged)
	}
	return active[0]
}

// Render draws the dendrogram as indented ASCII, mirroring Figure 4's
// left margin.
func Render(n *Node) string {
	var sb strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		pad := strings.Repeat("  ", depth)
		if n.Leaf() {
			fmt.Fprintf(&sb, "%s- %s\n", pad, n.Name)
			return
		}
		fmt.Fprintf(&sb, "%s+ (d=%.3f)\n", pad, n.Distance)
		rec(n.Left, depth+1)
		rec(n.Right, depth+1)
	}
	rec(n, 0)
	return sb.String()
}

// Cut returns the cluster memberships obtained by cutting the
// dendrogram at the given distance threshold.
func Cut(root *Node, threshold float64) [][]string {
	var out [][]string
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.Leaf() || n.Distance <= threshold {
			out = append(out, n.Leaves())
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(root)
	return out
}
