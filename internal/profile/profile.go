// Package profile carries dynamic execution counts from the
// interpreter back into the ADE benefit heuristic — the extension the
// paper sketches in §III-C ("This heuristic could be extended with
// profile information"). Counts are keyed by (function, instruction
// ordinal in walk order) so a profile collected on one parse of a
// program applies to any other parse or clone of it.
package profile

import "memoir/internal/ir"

// Key identifies an instruction stably across parses: the enclosing
// function's name and the instruction's ordinal in ir.WalkInstrs
// order.
type Key struct {
	Fn      string
	Ordinal int
}

// Profile maps instructions to their dynamic execution counts.
type Profile map[Key]uint64

// Ordinals returns each instruction's walk-order ordinal within fn.
func Ordinals(fn *ir.Func) map[*ir.Instr]int {
	out := map[*ir.Instr]int{}
	i := 0
	ir.WalkInstrs(fn, func(in *ir.Instr) {
		out[in] = i
		i++
	})
	return out
}

// AllocOrdinals returns each `new` instruction's ordinal among fn's
// allocations, in ir.WalkInstrs order. Unlike the all-instruction
// ordinal, the allocation ordinal survives the ADE transform (which
// inserts translations but never allocations), so it serves as the
// stable half of the telemetry site key shared by the compiler's
// remarks and both engines' runtime recorders.
func AllocOrdinals(fn *ir.Func) map[*ir.Instr]int {
	out := map[*ir.Instr]int{}
	i := 0
	ir.WalkInstrs(fn, func(in *ir.Instr) {
		if in.Op == ir.OpNew {
			out[in] = i
			i++
		}
	})
	return out
}

// Collect converts raw per-instruction counts into a stable profile.
func Collect(prog *ir.Program, counts map[*ir.Instr]uint64) Profile {
	p := Profile{}
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		ord := Ordinals(fn)
		for in, o := range ord {
			if c := counts[in]; c > 0 {
				p[Key{Fn: name, Ordinal: o}] = c
			}
		}
	}
	return p
}
