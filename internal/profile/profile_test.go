package profile

import (
	"testing"

	"memoir/internal/ir"
)

func TestOrdinalsStableAcrossParses(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewFunc("f", ir.TU64)
		x := b.Bin(ir.BinAdd, ir.ConstInt(ir.TU64, 1), ir.ConstInt(ir.TU64, 2), "x")
		fe := b.ForEachBegin(ir.Op(b.New(ir.SeqOf(ir.TU64), "s")), "k", "v")
		acc := b.LoopPhi(fe, "acc", x)
		a1 := b.Bin(ir.BinAdd, acc, fe.Val, "a1")
		b.SetLatch(acc, a1)
		b.ForEachEnd(fe)
		out := b.LoopExitPhi(fe, "out", acc)
		b.Ret(out)
		return b.Fn
	}
	f1, f2 := build(), build()
	o1, o2 := Ordinals(f1), Ordinals(f2)
	if len(o1) != len(o2) || len(o1) == 0 {
		t.Fatalf("ordinal counts differ: %d vs %d", len(o1), len(o2))
	}
	// Matching instructions (by walk order) must get matching
	// ordinals: invert and compare op sequences.
	seq := func(fn *ir.Func, ords map[*ir.Instr]int) []ir.Opcode {
		out := make([]ir.Opcode, len(ords))
		for in, o := range ords {
			out[o] = in.Op
		}
		return out
	}
	s1, s2 := seq(f1, o1), seq(f2, o2)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("ordinal %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}

func TestCollectFiltersZeroCounts(t *testing.T) {
	b := ir.NewFunc("f", ir.TU64)
	x := b.Bin(ir.BinAdd, ir.ConstInt(ir.TU64, 1), ir.ConstInt(ir.TU64, 2), "x")
	y := b.Bin(ir.BinMul, x, ir.ConstInt(ir.TU64, 3), "y")
	b.Ret(y)
	p := ir.NewProgram()
	p.Add(b.Fn)

	counts := map[*ir.Instr]uint64{x.Def: 5}
	prof := Collect(p, counts)
	if len(prof) != 1 {
		t.Fatalf("profile entries = %d, want 1", len(prof))
	}
	for k, v := range prof {
		if k.Fn != "f" || v != 5 {
			t.Fatalf("entry %+v = %d", k, v)
		}
	}
}
