package profile_test

import (
	"os"
	"testing"

	"memoir/internal/core"
	"memoir/internal/ir"
	"memoir/internal/parser"
	"memoir/internal/profile"
)

func parseFixture(t *testing.T) *ir.Program {
	t.Helper()
	src, err := os.ReadFile("../../testdata/histogram.mir")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// ordinalSeq renders a function's instruction stream as (ordinal, op)
// in walk order, the identity a Key is meant to preserve.
func ordinalSeq(fn *ir.Func, ords map[*ir.Instr]int) []ir.Opcode {
	out := make([]ir.Opcode, len(ords))
	ir.WalkInstrs(fn, func(in *ir.Instr) {
		if o, ok := ords[in]; ok {
			out[o] = in.Op
		}
	})
	return out
}

// TestKeyStableAcrossReparse pins the contract Key is named for: a
// profile collected on one parse applies to a print/re-parse roundtrip
// of the same program, because ordinals depend only on walk order.
func TestKeyStableAcrossReparse(t *testing.T) {
	p1 := parseFixture(t)
	p2, err := parser.Parse(ir.Print(p1))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	for _, name := range p1.Order {
		f1, f2 := p1.Funcs[name], p2.Funcs[name]
		if f2 == nil {
			t.Fatalf("function @%s lost in roundtrip", name)
		}
		s1 := ordinalSeq(f1, profile.Ordinals(f1))
		s2 := ordinalSeq(f2, profile.Ordinals(f2))
		if len(s1) != len(s2) {
			t.Fatalf("@%s: ordinal count %d vs %d", name, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("@%s ordinal %d: %v vs %v", name, i, s1[i], s2[i])
			}
		}
		a1 := ordinalSeq(f1, profile.AllocOrdinals(f1))
		a2 := ordinalSeq(f2, profile.AllocOrdinals(f2))
		if len(a1) != len(a2) {
			t.Fatalf("@%s: alloc ordinal count %d vs %d", name, len(a1), len(a2))
		}
	}
}

// TestKeyStableAcrossClone pins the clone half of the contract:
// ir.CloneFunc preserves walk order, so a clone inherits the
// original's ordinals (how interprocedural clones reuse profiles).
func TestKeyStableAcrossClone(t *testing.T) {
	prog := parseFixture(t)
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		cl := ir.CloneFunc(fn, name+"$enum")
		s1 := ordinalSeq(fn, profile.Ordinals(fn))
		s2 := ordinalSeq(cl, profile.Ordinals(cl))
		if len(s1) != len(s2) {
			t.Fatalf("@%s: clone ordinal count %d vs %d", name, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("@%s clone ordinal %d: %v vs %v", name, i, s1[i], s2[i])
			}
		}
	}
}

// TestAllocOrdinalsSurviveADE pins the property the telemetry site key
// depends on: the ADE transform inserts translations but never
// allocations, so each allocation instruction keeps its ordinal.
func TestAllocOrdinalsSurviveADE(t *testing.T) {
	prog := parseFixture(t)
	before := map[*ir.Instr]int{}
	for _, name := range prog.Order {
		for in, o := range profile.AllocOrdinals(prog.Funcs[name]) {
			before[in] = o
		}
	}
	if len(before) == 0 {
		t.Fatal("fixture has no allocations")
	}
	if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
		t.Fatalf("ade: %v", err)
	}
	after := map[*ir.Instr]int{}
	nAllocs := 0
	for _, name := range prog.Order {
		ords := profile.AllocOrdinals(prog.Funcs[name])
		nAllocs += len(ords)
		for in, o := range ords {
			after[in] = o
		}
	}
	if nAllocs != len(before) {
		t.Fatalf("allocation count changed: %d -> %d", len(before), nAllocs)
	}
	for in, o := range before {
		if after[in] != o {
			t.Fatalf("allocation ordinal moved: %d -> %d", o, after[in])
		}
	}
}
