// Dedup: the paper's introduction example — find the unique items in
// an array — here over strings, showing that data enumeration is
// string interning generalized: the set of seen strings becomes a
// BitSet over interned identifiers, and the array of strings becomes a
// sequence of identifiers (propagation), decoded only when printed.
//
// Run with: go run ./examples/dedup
package main

import (
	"fmt"
	"log"

	"memoir"
)

// The program builds an array with many duplicate strings, then
// prints (emits) each unique item once — the intro's code shape:
//
//	for v in array:
//	  if not set.has(v):
//	    set.insert(v)
//	    print(v)
const src = `
fn u64 @main(): exported
  %words := new Seq<str>()
  do:
    %i := phi(0, %i1)
    %w0 := phi(%words, %w4)
    %sel := rem(%i, 3)
    %is0 := eq(%sel, 0)
    if %is0:
      %w1 := insert(%w0, end, "foo")
    else:
      %is1 := eq(%sel, 1)
      if %is1:
        %w2 := insert(%w0, end, "bar")
      else:
        %w3 := insert(%w0, end, "quux")
      %wi := phi(%w2, %w3)
    %w4 := phi(%w1, %wi)
    %i1 := add(%i, 1)
    %more := lt(%i1, 3000)
  while %more
  %wF := phi(%w0)

  %seen := new Set<str>()
  for [%j, %v] in %wF:
    %s0 := phi(%seen, %s2)
    %dup := has(%s0, %v)
    if %dup:
      %skip := add(0, 0)
    else:
      %s1 := insert(%s0, %v)
      emit(%v)
    %s2 := phi(%s0, %s1)
  %sF := phi(%s0)
  %n := size(%sF)
  ret %n
`

func main() {
	baseline, err := memoir.Compile(src, memoir.WithoutADE())
	if err != nil {
		log.Fatal(err)
	}
	ade, err := memoir.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== ADE report ===")
	fmt.Print(ade.Report)

	rb, err := baseline.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	ra, err := ade.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: unique=%d checksum=%d sparse=%d\n", rb.Value, rb.Checksum, rb.Sparse)
	fmt.Printf("ade:      unique=%d checksum=%d sparse=%d\n", ra.Value, ra.Checksum, ra.Sparse)
	if rb.Checksum != ra.Checksum {
		log.Fatal("outputs differ")
	}
	fmt.Println("string keys interned; membership tests became bit tests.")
}
