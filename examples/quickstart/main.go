// Quickstart: the paper's running example (§III-B, Listings 1 and 2).
//
// A histogram keyed by sparse 64-bit values is computed over a
// synthetic sequence, then re-probed for output. We compile the same
// program once as the MEMOIR baseline and once with Automatic Data
// Enumeration, show the transformed IR (the map becomes a
// Map{BitMap}<idx,u32> and translations are hoisted and trimmed), and
// compare observable outputs and dynamic access mixes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memoir"
)

const src = `
fn u64 @main(): exported
  %input := new Seq<u64>()
  do:
    %i := phi(0, %i1)
    %in0 := phi(%input, %in1)
    %h := mul(%i, 2654435761)
    %v := rem(%h, 64)
    %sparse := mul(%v, 982451653)
    %in1 := insert(%in0, end, %sparse)
    %i1 := add(%i, 1)
    %more := lt(%i1, 10000)
  while %more
  %inF := phi(%in0)

  %hist := new Map<u64,u32>()
  for [%i2, %val] in %inF:
    %hist0 := phi(%hist, %hist3)
    %cond := has(%hist0, %val)
    if %cond:
      %freq := read(%hist0, %val)
    else:
      %hist1 := insert(%hist0, %val)
    %freq0 := phi(%freq, 0)
    %hist2 := phi(%hist0, %hist1)
    %freq1 := add(%freq0, 1)
    %hist3 := write(%hist2, %val, %freq1)
  %histF := phi(%hist0)

  for [%k, %f] in %histF:
    %got := read(%histF, %k)
    %g64 := cast<u64>(%got)
    %kv := add(%k, %g64)
    emit(%kv)
  %n := size(%histF)
  ret %n
`

func main() {
	baseline, err := memoir.Compile(src, memoir.WithoutADE())
	if err != nil {
		log.Fatal(err)
	}
	ade, err := memoir.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== ADE report ===")
	fmt.Print(ade.Report)
	fmt.Println("\n=== transformed program ===")
	fmt.Println(ade.Text())

	rb, err := baseline.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	ra, err := ade.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== results ===")
	fmt.Printf("baseline: distinct=%d checksum=%d sparse=%d dense=%d wall=%v\n",
		rb.Value, rb.Checksum, rb.Sparse, rb.Dense, rb.Wall)
	fmt.Printf("ade:      distinct=%d checksum=%d sparse=%d dense=%d wall=%v\n",
		ra.Value, ra.Checksum, ra.Sparse, ra.Dense, ra.Wall)
	if rb.Checksum != ra.Checksum || rb.Value != ra.Value {
		log.Fatal("outputs differ — ADE would be unsound!")
	}
	fmt.Println("outputs identical; sparse accesses replaced by dense ones.")
}
