// Unionfind: the paper's propagation case study (§III-E, Listings 3
// and 4). The parent map of a union-find forest stores node
// identities in its values; without propagation every chase step
// would translate, with propagation the loop runs translation-free —
// one @add on entry, one @dec on exit, exactly Listing 4.
//
// Run with: go run ./examples/unionfind
package main

import (
	"fmt"
	"log"

	"memoir"
)

const src = `
fn u64 @find(%uf: Map<u64,u64>, %v: u64):
  do:
    %curr := phi(%v, %parent)
    %parent := read(%uf, %curr)
    %not_done := neq(%parent, %curr)
  while %not_done
  %found := phi(%parent)
  ret %found

fn u64 @main(): exported
  %keys := new Seq<u64>()
  %uf := new Map<u64,u64>()
  do:
    %i := phi(0, %i1)
    %k0 := phi(%keys, %k1)
    %u0 := phi(%uf, %u2)
    %lab := mul(%i, 2654435761)
    %k1 := insert(%k0, end, %lab)
    %half := div(%i, 2)
    %plab := mul(%half, 2654435761)
    %u1 := insert(%u0, %lab)
    %u2 := write(%u1, %lab, %plab)
    %i1 := add(%i, 1)
    %more := lt(%i1, 4096)
  while %more
  %kF := phi(%k0)
  %uF := phi(%u0)

  for [%j, %q] in %kF:
    %acc0 := phi(0, %acc1)
    %root := call @find(%uF, %q)
    %acc1 := xor(%acc0, %root)
  %accF := phi(%acc0)
  emit(%accF)
  ret %accF
`

func main() {
	ade, err := memoir.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== transformed @find (compare with the paper's Listing 4) ===")
	fmt.Println(ade.Text()[:indexOf(ade.Text(), "fn u64 @main")])
	fmt.Print("=== ADE report ===\n", ade.Report)

	baseline, err := memoir.Compile(src, memoir.WithoutADE())
	if err != nil {
		log.Fatal(err)
	}
	rb, err := baseline.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	ra, err := ade.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: checksum=%d sparse=%d wall=%v\n", rb.Checksum, rb.Sparse, rb.Wall)
	fmt.Printf("ade:      checksum=%d sparse=%d wall=%v\n", ra.Checksum, ra.Sparse, ra.Wall)
	if rb.Checksum != ra.Checksum {
		log.Fatal("outputs differ")
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return len(s)
}
