// PTA directives: the RQ4 performance-engineering walkthrough. The
// untuned heuristic shares one enumeration between the points-to
// map's pointer keys and its inner sets' object elements; with far
// more pointers than objects the inner bitsets end up almost empty,
// so aggregate operations (union, iteration) pay for bits that are
// never set. The `#pragma ade inner(noshare)` directive gives the
// inner sets their own object-only enumeration; inner(select(...))
// explores SparseBitSet and FlatSet instead.
//
// Run with: go run ./examples/pta-directives
package main

import (
	"fmt"
	"log"

	"memoir/internal/bench"
	"memoir/internal/core"
	"memoir/internal/interp"
)

func main() {
	s := bench.Get("PTA")
	baseline := measure(s, "", nil)
	fmt.Printf("%-22s %12s %14s %10s\n", "config", "modeled(ms)", "speedup", "memory")
	report := func(name string, m *run) {
		fmt.Printf("%-22s %12.2f %13.2fx %9.1f%%\n",
			name, m.modeled/1e6, baseline.modeled/m.modeled, 100*m.peak/baseline.peak)
	}
	report("memoir (baseline)", baseline)
	for _, v := range []struct{ name, variant string }{
		{"ade (untuned)", ""},
		{"ade inner(noshare)", "noshare"},
		{"ade inner(noenum)", "noenumerate"},
		{"ade inner(sparse)", "sparse"},
		{"ade inner(flat)", "flat"},
	} {
		opts := core.DefaultOptions()
		m := measure(s, v.variant, &opts)
		if m.checksum != baseline.checksum {
			log.Fatalf("%s: output mismatch", v.name)
		}
		report(v.name, m)
	}
	fmt.Println("\nThe untuned sharing regresses; inner(noshare) restores the win (RQ4).")
}

type run struct {
	modeled  float64
	peak     float64
	checksum uint64
}

func measure(s *bench.Spec, variant string, ade *core.Options) *run {
	prog := s.Build(variant)
	if ade != nil {
		if _, err := core.Apply(prog, *ade); err != nil {
			log.Fatal(err)
		}
	}
	res, err := bench.Execute(s, prog, interp.DefaultOptions(), bench.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	return &run{
		modeled:  res.Stats.ModeledNanos(interp.ArchIntelX64),
		peak:     float64(res.Peak),
		checksum: res.EmitSum,
	}
}
