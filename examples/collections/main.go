// Collections: using the implementation library directly (the
// selection space of the paper's Table I). Shows the memory and union
// behavior that drives ADE's wins — and the sparse-occupancy hazard
// behind the RQ4 case study.
//
// Run with: go run ./examples/collections
package main

import (
	"fmt"
	"time"

	"memoir/internal/collections"
)

func main() {
	const n = 1 << 16

	// The same dense identifier domain stored five ways.
	fmt.Printf("%-14s %12s %12s\n", "set impl", "bytes", "union time")
	hash := collections.NewUint64HashSet()
	swiss := collections.NewUint64SwissSet()
	flat := collections.NewUint64FlatSet()
	bits := collections.NewBitSet()
	roar := collections.NewSparseBitSet()
	for i := uint64(0); i < n; i++ {
		hash.Insert(i)
		swiss.Insert(i)
		bits.Insert(uint32(i))
		roar.Insert(uint32(i))
	}
	for i := uint64(0); i < n; i += 2 {
		flat.Insert(i)
	}

	other := collections.NewBitSet()
	for i := uint32(0); i < n; i += 3 {
		other.Insert(i)
	}
	start := time.Now()
	bits.UnionWith(other)
	bitUnion := time.Since(start)

	hashOther := collections.NewUint64HashSet()
	for i := uint64(0); i < n; i += 3 {
		hashOther.Insert(i)
	}
	start = time.Now()
	hashOther.Iterate(func(k uint64) bool { hash.Insert(k); return true })
	hashUnion := time.Since(start)

	fmt.Printf("%-14s %12d %12v\n", "HashSet", hash.Bytes(), hashUnion)
	fmt.Printf("%-14s %12d %12s\n", "SwissSet", swiss.Bytes(), "-")
	fmt.Printf("%-14s %12d %12s\n", "FlatSet", flat.Bytes(), "-")
	fmt.Printf("%-14s %12d %12v\n", "BitSet", bits.Bytes(), bitUnion)
	fmt.Printf("%-14s %12d %12s\n", "SparseBitSet", roar.Bytes(), "-")

	// The RQ4 hazard: one element at a huge identifier.
	lone := collections.NewBitSet()
	lone.Insert(20_000_000)
	loneRoar := collections.NewSparseBitSet()
	loneRoar.Insert(20_000_000)
	fmt.Printf("\none element at id 20M: BitSet=%d bytes, SparseBitSet=%d bytes\n",
		lone.Bytes(), loneRoar.Bytes())

	// Run-length compression for contiguous ranges.
	rangeSet := collections.NewSparseBitSet()
	for i := uint32(1000); i < 200000; i++ {
		rangeSet.Insert(i)
	}
	before := rangeSet.Bytes()
	rangeSet.RunOptimize()
	fmt.Printf("contiguous range in SparseBitSet: %d bytes -> %d after RunOptimize\n",
		before, rangeSet.Bytes())
}
