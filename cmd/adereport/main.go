// Command adereport joins the two halves of the observability layer:
// the compiler's optimization remarks (which decisions ADE took, and
// where) and the engines' runtime collection telemetry (what actually
// happened at each site). The join key is the allocation-site key
// (function, `new` ordinal, depth) that both sides carry, so each
// enumeration is reported as "created by rule X at line Y, absorbed Z
// translations at runtime".
//
// Usage:
//
//	adereport program.mir                 # one program, scalar -args
//	adereport -engine vm -args 10 f.mir
//	adereport -bench all -scale test      # whole suite + aggregate
//	adereport -bench PTA -json            # machine-readable join
//	adereport -profile p.json f.mir       # offline replay of a saved profile
//
// With -profile the program is not executed: the saved adeprofile/v1
// document stands in for live telemetry, the program is compiled both
// statically and under the profile, and every allocation site where
// the two compiles disagree gets an auto-generated `#pragma ade`
// suggestion line that bakes the profiled decision into the source.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"memoir/internal/adeprofile"
	"memoir/internal/bench"
	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
	"memoir/internal/remarks"
	"memoir/internal/stats"
	"memoir/internal/telemetry"
)

// ReportSchema identifies the -json output format (v2 adds the
// profile verdict and pragma suggestions of -profile mode; the v1
// fields are unchanged).
const ReportSchema = "adereport/v2"

// EnumJoin is one enumeration with both its compile-time origin and
// its runtime behaviour.
type EnumJoin struct {
	Name string `json:"name"`
	// Created are the enum-create remarks whose class global is Name.
	Created []remarks.Remark `json:"created"`
	// Elided counts the compile-time RTE eliminations for this class.
	Elided int `json:"elided"`
	// Selected is the select-impl verdict, if any.
	Selected string `json:"selected,omitempty"`
	// Runtime is the enumeration's translation telemetry (nil when the
	// enumeration was never touched at runtime).
	Runtime *telemetry.EnumStats `json:"runtime,omitempty"`
	// Sites is the runtime telemetry of the enumerated allocation
	// sites, joined via the shared site key.
	Sites []*telemetry.SiteStats `json:"sites,omitempty"`
}

// ProgReport is the joined report for one program run.
type ProgReport struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
	// Enums joins remarks to telemetry per enumeration class.
	Enums []EnumJoin `json:"enums"`
	// Remarks is the full remark stream.
	Remarks []remarks.Remark `json:"remarks"`
	// Telemetry is the full runtime recording, including sites that no
	// remark mentions (benchmark inputs, non-enumerated collections).
	// In -profile mode it is reconstituted from the saved aggregates.
	Telemetry *telemetry.Telemetry `json:"telemetry"`
	// Profile is the profile-guided compile's verdict ("weighted: ..."
	// or "stale: ..."); empty outside -profile mode.
	Profile string `json:"profile,omitempty"`
	// Suggestions are the auto-generated pragma lines (-profile mode).
	Suggestions []Suggestion `json:"suggestions,omitempty"`
}

// Doc is the -json document: one entry per program plus the suite
// aggregate in bench mode.
type Doc struct {
	Schema   string       `json:"schema"`
	Programs []ProgReport `json:"programs"`
	// GeoMeanCollOps aggregates suite cost in bench mode (0 when the
	// strict geometric mean is undefined or in single-program mode).
	GeoMeanCollOps float64 `json:"geoMeanCollOps,omitempty"`
}

func main() {
	var (
		benchSel = flag.String("bench", "", "run benchmark(s) instead of a .mir file: a suite abbreviation or \"all\"")
		scale    = flag.String("scale", "test", "workload scale for -bench: test, small, full")
		engine   = flag.String("engine", "interp", "execution engine: interp or vm")
		args     = flag.String("args", "", "comma-separated u64 arguments for @main (single-program mode)")
		jsonOut  = flag.Bool("json", false, "write the joined report as JSON to stdout")
		profIn   = flag.String("profile", "", "offline replay: join this saved adeprofile/v1 `file` to the program's remarks instead of executing, and suggest pragmas where static and profile-guided compiles disagree")
	)
	flag.Parse()
	eng, err := bench.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	var sc bench.Scale
	switch *scale {
	case "test":
		sc = bench.ScaleTest
	case "small":
		sc = bench.ScaleSmall
	case "full":
		sc = bench.ScaleFull
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}

	doc := Doc{Schema: ReportSchema}
	switch {
	case *profIn != "":
		if *benchSel != "" || flag.NArg() != 1 {
			fatal(fmt.Errorf("-profile needs exactly one program file (and no -bench)"))
		}
		pr, err := runProfile(flag.Arg(0), *profIn)
		if err != nil {
			fatal(err)
		}
		doc.Programs = append(doc.Programs, *pr)
	case *benchSel != "":
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("-bench and a program file are mutually exclusive"))
		}
		specs := bench.All()
		if *benchSel != "all" {
			s := bench.Get(*benchSel)
			if s == nil {
				fatal(fmt.Errorf("unknown benchmark %q", *benchSel))
			}
			specs = []*bench.Spec{s}
		}
		var collOps []float64
		for _, s := range specs {
			pr, ops, err := runBench(s, sc, eng)
			if err != nil {
				fatal(err)
			}
			doc.Programs = append(doc.Programs, *pr)
			collOps = append(collOps, float64(ops))
		}
		if g, err := stats.GeoMeanStrict(collOps); err == nil {
			doc.GeoMeanCollOps = g
		} else {
			fmt.Fprintf(os.Stderr, "adereport: suite aggregate unavailable: %v\n", err)
		}
	case flag.NArg() == 1:
		pr, err := runFile(flag.Arg(0), *args, eng)
		if err != nil {
			fatal(err)
		}
		doc.Programs = append(doc.Programs, *pr)
	default:
		fmt.Fprintln(os.Stderr, "usage: adereport [flags] program.mir | adereport -bench all|ABBR")
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		return
	}
	for i := range doc.Programs {
		writeText(os.Stdout, &doc.Programs[i])
	}
	if doc.GeoMeanCollOps > 0 {
		fmt.Printf("== suite aggregate over %d benchmarks ==\n", len(doc.Programs))
		fmt.Printf("geomean collection ops (ade): %.1f\n", doc.GeoMeanCollOps)
	}
}

// runFile ADE-compiles and executes one .mir program with remarks and
// telemetry on, then joins them.
func runFile(path, argList string, eng bench.Engine) (*ProgReport, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(prog); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	em := remarks.NewEmitter()
	opts := core.DefaultOptions()
	opts.Remarks = em
	if _, err := core.Apply(prog, opts); err != nil {
		return nil, err
	}
	rec := telemetry.NewRecorder()
	iopts := interp.DefaultOptions()
	iopts.Telemetry = rec
	m, err := bench.NewMachine(prog, iopts, eng)
	if err != nil {
		return nil, err
	}
	var vals []interp.Val
	if argList != "" {
		for _, a := range strings.Split(argList, ",") {
			x, err := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
			if err != nil {
				return nil, err
			}
			vals = append(vals, interp.IntV(x))
		}
	}
	if _, err := m.Run("main", vals...); err != nil {
		return nil, err
	}
	return join(path, eng, em.Remarks, rec.Result()), nil
}

// runProfile is the offline-replay path: no execution. The saved
// profile stands in for live telemetry, and the program is compiled
// twice (static and profile-guided) to generate pragma suggestions
// where the decisions disagree.
func runProfile(path, profPath string) (*ProgReport, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	build := func() (*ir.Program, error) {
		prog, err := parser.Parse(string(src))
		if err != nil {
			return nil, err
		}
		if err := ir.Verify(prog); err != nil {
			return nil, fmt.Errorf("verify: %w", err)
		}
		return prog, nil
	}
	prog, err := build()
	if err != nil {
		return nil, err
	}
	hash := ir.ProgramHash(prog)
	prof, err := adeprofile.ReadFile(profPath)
	if err != nil {
		return nil, err
	}
	sugs, pgoRs, verdict, err := Suggest(build, prof)
	if err != nil {
		return nil, err
	}
	pr := join(path, bench.EngineInterp, pgoRs, teleFromProfile(prof.For(hash)))
	pr.Engine = "profile(" + profPath + ")"
	pr.Profile = verdict
	pr.Suggestions = sugs
	return pr, nil
}

// runBench ADE-compiles and executes one suite benchmark, returning
// the joined report and the run's collection-op total for the suite
// aggregate.
func runBench(s *bench.Spec, sc bench.Scale, eng bench.Engine) (*ProgReport, uint64, error) {
	prog := s.Build("")
	em := remarks.NewEmitter()
	opts := core.DefaultOptions()
	opts.Remarks = em
	if _, err := core.Apply(prog, opts); err != nil {
		return nil, 0, fmt.Errorf("%s: ade: %w", s.Abbr, err)
	}
	rec := telemetry.NewRecorder()
	iopts := interp.DefaultOptions()
	iopts.Telemetry = rec
	res, err := bench.ExecuteOn(s, prog, iopts, sc, eng)
	if err != nil {
		return nil, 0, err
	}
	return join(s.Abbr, eng, em.Remarks, rec.Result()), res.Stats.CollOps(), nil
}

// join pairs each enumeration class's remarks with the runtime
// telemetry recorded at its sites and for its enumeration global.
func join(name string, eng bench.Engine, rs []remarks.Remark, tele *telemetry.Telemetry) *ProgReport {
	siteByKey := map[string]*telemetry.SiteStats{}
	for _, ss := range tele.Sites {
		siteByKey[ss.Key.String()] = ss
	}
	enumByName := map[string]*telemetry.EnumStats{}
	for _, es := range tele.Enums {
		enumByName[es.Global] = es
	}

	var order []string
	byEnum := map[string]*EnumJoin{}
	get := func(n string) *EnumJoin {
		ej, ok := byEnum[n]
		if !ok {
			ej = &EnumJoin{Name: n, Runtime: enumByName[n]}
			byEnum[n] = ej
			order = append(order, n)
		}
		return ej
	}
	for _, r := range rs {
		switch r.Code {
		case remarks.CodeEnumCreate:
			ej := get(r.ArgVal("enum"))
			ej.Created = append(ej.Created, r)
			if r.Key != nil {
				if ss := siteByKey[r.Key.String()]; ss != nil {
					ej.Sites = append(ej.Sites, ss)
				}
			}
		case remarks.CodeRTEElide:
			get(r.Site).Elided++
		case remarks.CodeSelectImpl:
			if e := r.ArgVal("enum"); e != "" {
				get(e).Selected = r.ArgVal("impl")
			}
		}
	}
	pr := &ProgReport{Name: name, Engine: eng.String(), Remarks: rs, Telemetry: tele}
	for _, n := range order {
		pr.Enums = append(pr.Enums, *byEnum[n])
	}
	return pr
}

func writeText(w io.Writer, pr *ProgReport) {
	fmt.Fprintf(w, "== %s (engine=%s) ==\n", pr.Name, pr.Engine)
	for i := range pr.Enums {
		ej := &pr.Enums[i]
		fmt.Fprintf(w, "enum %s:\n", ej.Name)
		for _, r := range ej.Created {
			fmt.Fprintf(w, "  created by %s at @%s:%d (%s), benefit %s\n",
				r.Pass, r.Fn, r.Line, r.Site, r.ArgVal("benefit"))
		}
		if ej.Selected != "" {
			fmt.Fprintf(w, "  selected implementation: %s\n", ej.Selected)
		}
		if ej.Elided > 0 {
			fmt.Fprintf(w, "  compile time: %d redundant translations elided\n", ej.Elided)
		}
		if rt := ej.Runtime; rt != nil {
			fmt.Fprintf(w, "  runtime: absorbed %d translations (enc=%d dec=%d add=%d, %d grew), final size %d\n",
				rt.Trans(), rt.Enc, rt.Dec, rt.Add, rt.Added, rt.FinalLen)
		} else {
			fmt.Fprintf(w, "  runtime: enumeration never touched\n")
		}
		for _, ss := range ej.Sites {
			total := ss.Sparse + ss.Dense
			densePct := 0.0
			if total > 0 {
				densePct = 100 * float64(ss.Dense) / float64(total)
			}
			fmt.Fprintf(w, "  site %s impl=%s ops=%d dense=%.0f%% peak=%d\n",
				ss.Key, ss.Impl, ss.Total(), densePct, ss.PeakLen)
		}
	}
	if len(pr.Enums) == 0 {
		fmt.Fprintln(w, "no enumerations created")
	}
	if pr.Profile != "" {
		fmt.Fprintf(w, "profile: %s\n", pr.Profile)
	}
	if len(pr.Suggestions) > 0 {
		fmt.Fprintln(w, "pragma suggestions (insert each on the line before the `new`):")
		for _, s := range pr.Suggestions {
			fmt.Fprintf(w, "  @%s:%d %s: %s   (%s)\n", s.Fn, s.Line, s.Value, s.Pragma, s.Reason)
		}
	}
	fmt.Fprintln(w, "telemetry:")
	pr.Telemetry.WriteText(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adereport:", err)
	os.Exit(1)
}
