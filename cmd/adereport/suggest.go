package main

import (
	"fmt"
	"sort"
	"strings"

	"memoir/internal/adeprofile"
	"memoir/internal/core"
	"memoir/internal/ir"
	"memoir/internal/remarks"
	"memoir/internal/telemetry"
)

// Suggestion is one auto-generated `#pragma ade` line: where the
// static heuristic and the profile-guided compile disagree, the
// pragma that makes the static compile match the profiled decision.
// Inserting the pragma on the line before the allocation bakes the
// profile's verdict into the source, so later compiles need no
// profile file.
type Suggestion struct {
	Fn    string `json:"fn"`
	Value string `json:"value"` // allocation value name, e.g. "%vstats"
	Line  int    `json:"line"`  // 1-based source line of the `new`
	// Pragma is the literal line to insert, e.g. "#pragma ade noenumerate".
	Pragma string `json:"pragma"`
	Reason string `json:"reason"`
}

// decision is one allocation site's compile outcome, distilled from
// the remark stream.
type decision struct {
	fn, value string
	line      int
	enum      bool   // an enum-create remark named this site
	impl      string // the select-impl verdict, if any
}

// decisions collapses a remark stream into per-site outcomes.
func decisions(rs []remarks.Remark) map[string]*decision {
	out := map[string]*decision{}
	get := func(r remarks.Remark) *decision {
		k := "@" + r.Fn + " " + r.Site
		d, ok := out[k]
		if !ok {
			d = &decision{fn: r.Fn, value: r.Site, line: r.Line}
			out[k] = d
		}
		if d.line == 0 {
			d.line = r.Line
		}
		return d
	}
	for _, r := range rs {
		switch r.Code {
		case remarks.CodeEnumCreate:
			get(r).enum = true
		case remarks.CodeSelectImpl:
			get(r).impl = r.ArgVal("impl")
		}
	}
	return out
}

// compileRemarks parses src fresh and runs the ADE pass with remarks
// on, optionally under a profile.
func compileRemarks(build func() (*ir.Program, error), prof *adeprofile.Profile) ([]remarks.Remark, *core.Report, error) {
	prog, err := build()
	if err != nil {
		return nil, nil, err
	}
	em := remarks.NewEmitter()
	opts := core.DefaultOptions()
	opts.Remarks = em
	opts.SiteProfile = prof
	rep, err := core.Apply(prog, opts)
	if err != nil {
		return nil, nil, err
	}
	return em.Remarks, rep, nil
}

// Suggest compiles the program twice — once static, once under the
// profile — and returns a pragma suggestion for every allocation site
// where the two compiles decided differently, the profile-guided
// compile's remark stream (for the join), and its verdict string
// ("weighted: ..." or "stale: ..."). A stale profile yields no
// suggestions: both compiles were static.
func Suggest(build func() (*ir.Program, error), prof *adeprofile.Profile) ([]Suggestion, []remarks.Remark, string, error) {
	staticRs, _, err := compileRemarks(build, nil)
	if err != nil {
		return nil, nil, "", fmt.Errorf("static compile: %w", err)
	}
	pgoRs, pgoRep, err := compileRemarks(build, prof)
	if err != nil {
		return nil, nil, "", fmt.Errorf("profile-guided compile: %w", err)
	}
	if strings.HasPrefix(pgoRep.Profile, "stale") {
		return nil, pgoRs, pgoRep.Profile, nil
	}
	sd, pd := decisions(staticRs), decisions(pgoRs)
	keys := map[string]bool{}
	for k := range sd {
		keys[k] = true
	}
	for k := range pd {
		keys[k] = true
	}
	var out []Suggestion
	for k := range keys {
		s, p := sd[k], pd[k]
		if s == nil {
			s = &decision{fn: p.fn, value: p.value, line: p.line}
		}
		if p == nil {
			p = &decision{fn: s.fn, value: s.value, line: s.line}
		}
		base := Suggestion{Fn: s.fn, Value: s.value, Line: s.line}
		if base.Line == 0 {
			base.Line = p.line
		}
		switch {
		case s.enum && !p.enum:
			sg := base
			sg.Pragma = "#pragma ade noenumerate"
			sg.Reason = "statically enumerated, but the profile observes no benefit"
			out = append(out, sg)
		case !s.enum && p.enum:
			sg := base
			sg.Pragma = "#pragma ade enumerate"
			sg.Reason = "statically skipped, but the profile observes benefit"
			out = append(out, sg)
		}
		if s.impl != p.impl && p.impl != "" && s.enum == p.enum {
			sg := base
			sg.Pragma = fmt.Sprintf("#pragma ade select(%s)", p.impl)
			if s.impl == "" {
				sg.Reason = "profile-guided compile selects an implementation the static compile leaves default"
			} else {
				sg.Reason = fmt.Sprintf("static compile selects %s; the profile steers %s", s.impl, p.impl)
			}
			out = append(out, sg)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Pragma < out[j].Pragma
	})
	return out, pgoRs, pgoRep.Profile, nil
}

// teleFromProfile reconstitutes the saved aggregates as a telemetry
// document, so the offline-replay join renders through the same path
// as a live run (per-run fields — mutation counts, occupancy samples —
// are not persisted and stay zero).
func teleFromProfile(pp *adeprofile.ProgramProfile) *telemetry.Telemetry {
	t := &telemetry.Telemetry{}
	if pp == nil {
		return t
	}
	for _, s := range pp.Sites {
		t.Sites = append(t.Sites, &telemetry.SiteStats{
			Key:       s.Key,
			Impl:      s.Impl,
			Ops:       s.Ops,
			Sparse:    s.Sparse,
			Dense:     s.Dense,
			Instances: int(s.Instances),
			PeakLen:   s.PeakLen,
			KeySeen:   s.KeySeen,
			KeyLo:     s.KeyLo,
			KeyHi:     s.KeyHi,
		})
	}
	for _, e := range pp.Enums {
		t.Enums = append(t.Enums, &telemetry.EnumStats{
			Global:   e.Global,
			Enc:      e.Enc,
			Dec:      e.Dec,
			Add:      e.Add,
			Added:    e.Added,
			FinalLen: e.FinalLen,
		})
	}
	return t
}
