// Command memoir-run parses a textual MEMOIR program, optionally
// applies ADE, executes its @main function on the instrumented
// interpreter or the bytecode register VM, and reports the result,
// output checksum and dynamic statistics.
//
// Usage:
//
//	memoir-run program.mir
//	memoir-run -ade -stats program.mir
//	memoir-run -ade -args 10,20 program.mir   # scalar u64 args
//	memoir-run -engine vm program.mir         # bytecode VM engine
//	memoir-run -dump-bytecode program.mir     # print bytecode, don't run
//	memoir-run -max-steps 100000 program.mir  # resource-budgeted run
//	memoir-run -max-mem 1048576 -timeout 5s program.mir
//	memoir-run -telemetry program.mir         # per-site telemetry dump
//	memoir-run -profile-out p.json program.mir # write adeprofile/v1
//
// A run that exhausts a budget (-max-steps, -max-mem, -timeout) stops
// with a structured error, prints the partial statistics accumulated
// up to the interruption point — identical on either engine — and
// exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"memoir/internal/adeprofile"
	"memoir/internal/bench"
	"memoir/internal/bytecode"
	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
	"memoir/internal/telemetry"
)

func main() {
	var (
		ade    = flag.Bool("ade", false, "apply Automatic Data Enumeration before running")
		stats  = flag.Bool("stats", false, "print dynamic operation statistics")
		args   = flag.String("args", "", "comma-separated u64 arguments for @main")
		entry  = flag.String("entry", "main", "entry function")
		engine = flag.String("engine", "interp", "execution engine: interp or vm (identical measurements)")
		dump   = flag.Bool("dump-bytecode", false, "print the compiled bytecode and exit without running")

		maxSteps = flag.Uint64("max-steps", 0, "stop with a structured error after this many interpreted steps (0 = unlimited)")
		maxMem   = flag.Int64("max-mem", 0, "stop with a structured error when modeled live bytes exceed this (0 = unlimited)")
		timeout  = flag.Duration("timeout", 0, "stop with a structured error after this wall-clock duration (0 = none)")

		teleDump   = flag.Bool("telemetry", false, "record per-site telemetry and print a human-readable dump after the run")
		profileOut = flag.String("profile-out", "", "record telemetry and write an adeprofile/v1 profile to `file` (feed it back with adec -profile)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: memoir-run [flags] program.mir")
		os.Exit(2)
	}
	eng, err := bench.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := ir.Verify(prog); err != nil {
		fatal(fmt.Errorf("verify: %w", err))
	}
	// Profiles are keyed by the pre-ADE hash: the site keys survive the
	// transform, so a profile collected on any configuration of this
	// program guides any other.
	progHash := ir.ProgramHash(prog)
	if *ade {
		rep, err := core.Apply(prog, core.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		if err := ir.Verify(prog); err != nil {
			fatal(fmt.Errorf("verify after ADE: %w", err))
		}
		fmt.Fprint(os.Stderr, rep)
	}
	if *dump {
		bc, err := bytecode.Compile(prog)
		if err != nil {
			fatal(fmt.Errorf("bytecode: %w", err))
		}
		fmt.Print(bytecode.Disasm(bc))
		return
	}
	iopts := interp.DefaultOptions()
	iopts.MaxSteps = *maxSteps
	iopts.MaxBytes = *maxMem
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		iopts.Context = ctx
	}
	var rec *telemetry.Recorder
	if *teleDump || *profileOut != "" {
		rec = telemetry.NewRecorder()
		iopts.Telemetry = rec
	}
	// emitTelemetry shares one emission path between -telemetry and
	// -profile-out; both are valid at a budget interruption too (the
	// recorder's partial fold is engine-identical like the stats).
	emitTelemetry := func() {
		if rec == nil {
			return
		}
		t := rec.Result()
		if *teleDump {
			if err := t.WriteText(os.Stdout); err != nil {
				fatal(fmt.Errorf("telemetry: %w", err))
			}
		}
		if *profileOut != "" {
			p := adeprofile.FromTelemetry(progHash, flag.Arg(0), t)
			if err := p.WriteFile(*profileOut); err != nil {
				fatal(fmt.Errorf("profile: %w", err))
			}
		}
	}
	m, err := bench.NewMachine(prog, iopts, eng)
	if err != nil {
		fatal(err)
	}
	var vals []interp.Val
	if *args != "" {
		for _, a := range strings.Split(*args, ",") {
			x, err := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
			if err != nil {
				fatal(err)
			}
			vals = append(vals, interp.IntV(x))
		}
	}
	start := time.Now()
	ret, err := m.Run(*entry, vals...)
	elapsed := time.Since(start)
	if err != nil {
		var le *interp.LimitError
		if !errors.As(err, &le) {
			fatal(err)
		}
		// A budget interruption is a structured stop, not a crash: the
		// partial statistics up to the interruption point are valid (and
		// engine-identical), so report them before exiting nonzero.
		m.FinalizeMem()
		st := m.Stats()
		fmt.Printf("interrupted: %v\n", err)
		fmt.Printf("output: count=%d checksum=%d (partial)\n", st.EmitCount, st.EmitSum)
		printStats(*stats, eng, elapsed, st)
		emitTelemetry()
		os.Exit(1)
	}
	m.FinalizeMem()
	st := m.Stats()
	fmt.Printf("result: %s\n", ret)
	fmt.Printf("output: count=%d checksum=%d\n", st.EmitCount, st.EmitSum)
	printStats(*stats, eng, elapsed, st)
	emitTelemetry()
}

func printStats(on bool, eng bench.Engine, elapsed time.Duration, st *interp.Stats) {
	if !on {
		return
	}
	fmt.Printf("engine: %s\n", eng)
	fmt.Printf("wall: %v\n", elapsed)
	fmt.Printf("steps: %d  sparse: %d  dense: %d  peak: %d bytes\n",
		st.Steps, st.Sparse, st.Dense, st.PeakBytes)
	fmt.Printf("modeled: intel=%.0fns aarch64=%.0fns\n",
		st.ModeledNanos(interp.ArchIntelX64), st.ModeledNanos(interp.ArchAArch64))
	for op, n := range st.ByOpKind() {
		fmt.Printf("  %-9s %d\n", op, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memoir-run:", err)
	os.Exit(1)
}
