// Command memoir-run parses a textual MEMOIR program, optionally
// applies ADE, executes its @main function on the instrumented
// interpreter, and reports the result, output checksum and dynamic
// statistics.
//
// Usage:
//
//	memoir-run program.mir
//	memoir-run -ade -stats program.mir
//	memoir-run -ade -args 10,20 program.mir   # scalar u64 args
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
)

func main() {
	var (
		ade   = flag.Bool("ade", false, "apply Automatic Data Enumeration before running")
		stats = flag.Bool("stats", false, "print dynamic operation statistics")
		args  = flag.String("args", "", "comma-separated u64 arguments for @main")
		entry = flag.String("entry", "main", "entry function")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: memoir-run [flags] program.mir")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := ir.Verify(prog); err != nil {
		fatal(fmt.Errorf("verify: %w", err))
	}
	if *ade {
		rep, err := core.Apply(prog, core.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		if err := ir.Verify(prog); err != nil {
			fatal(fmt.Errorf("verify after ADE: %w", err))
		}
		fmt.Fprint(os.Stderr, rep)
	}
	ip := interp.New(prog, interp.DefaultOptions())
	var vals []interp.Val
	if *args != "" {
		for _, a := range strings.Split(*args, ",") {
			x, err := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
			if err != nil {
				fatal(err)
			}
			vals = append(vals, interp.IntV(x))
		}
	}
	start := time.Now()
	ret, err := ip.Run(*entry, vals...)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	ip.FinalizeMem()
	fmt.Printf("result: %s\n", ret)
	fmt.Printf("output: count=%d checksum=%d\n", ip.Stats.EmitCount, ip.Stats.EmitSum)
	if *stats {
		fmt.Printf("wall: %v\n", elapsed)
		fmt.Printf("steps: %d  sparse: %d  dense: %d  peak: %d bytes\n",
			ip.Stats.Steps, ip.Stats.Sparse, ip.Stats.Dense, ip.Stats.PeakBytes)
		fmt.Printf("modeled: intel=%.0fns aarch64=%.0fns\n",
			ip.Stats.ModeledNanos(interp.ArchIntelX64), ip.Stats.ModeledNanos(interp.ArchAArch64))
		for op, n := range ip.Stats.ByOpKind() {
			fmt.Printf("  %-9s %d\n", op, n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memoir-run:", err)
	os.Exit(1)
}
