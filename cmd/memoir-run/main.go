// Command memoir-run parses a textual MEMOIR program, optionally
// applies ADE, executes its @main function on the instrumented
// interpreter or the bytecode register VM, and reports the result,
// output checksum and dynamic statistics.
//
// Usage:
//
//	memoir-run program.mir
//	memoir-run -ade -stats program.mir
//	memoir-run -ade -args 10,20 program.mir   # scalar u64 args
//	memoir-run -engine vm program.mir         # bytecode VM engine
//	memoir-run -dump-bytecode program.mir     # print bytecode, don't run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"memoir/internal/bench"
	"memoir/internal/bytecode"
	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
)

func main() {
	var (
		ade    = flag.Bool("ade", false, "apply Automatic Data Enumeration before running")
		stats  = flag.Bool("stats", false, "print dynamic operation statistics")
		args   = flag.String("args", "", "comma-separated u64 arguments for @main")
		entry  = flag.String("entry", "main", "entry function")
		engine = flag.String("engine", "interp", "execution engine: interp or vm (identical measurements)")
		dump   = flag.Bool("dump-bytecode", false, "print the compiled bytecode and exit without running")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: memoir-run [flags] program.mir")
		os.Exit(2)
	}
	eng, err := bench.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := ir.Verify(prog); err != nil {
		fatal(fmt.Errorf("verify: %w", err))
	}
	if *ade {
		rep, err := core.Apply(prog, core.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		if err := ir.Verify(prog); err != nil {
			fatal(fmt.Errorf("verify after ADE: %w", err))
		}
		fmt.Fprint(os.Stderr, rep)
	}
	if *dump {
		bc, err := bytecode.Compile(prog)
		if err != nil {
			fatal(fmt.Errorf("bytecode: %w", err))
		}
		fmt.Print(bytecode.Disasm(bc))
		return
	}
	m, err := bench.NewMachine(prog, interp.DefaultOptions(), eng)
	if err != nil {
		fatal(err)
	}
	var vals []interp.Val
	if *args != "" {
		for _, a := range strings.Split(*args, ",") {
			x, err := strconv.ParseUint(strings.TrimSpace(a), 10, 64)
			if err != nil {
				fatal(err)
			}
			vals = append(vals, interp.IntV(x))
		}
	}
	start := time.Now()
	ret, err := m.Run(*entry, vals...)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	m.FinalizeMem()
	st := m.Stats()
	fmt.Printf("result: %s\n", ret)
	fmt.Printf("output: count=%d checksum=%d\n", st.EmitCount, st.EmitSum)
	if *stats {
		fmt.Printf("engine: %s\n", eng)
		fmt.Printf("wall: %v\n", elapsed)
		fmt.Printf("steps: %d  sparse: %d  dense: %d  peak: %d bytes\n",
			st.Steps, st.Sparse, st.Dense, st.PeakBytes)
		fmt.Printf("modeled: intel=%.0fns aarch64=%.0fns\n",
			st.ModeledNanos(interp.ArchIntelX64), st.ModeledNanos(interp.ArchAArch64))
		for op, n := range st.ByOpKind() {
			fmt.Printf("  %-9s %d\n", op, n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memoir-run:", err)
	os.Exit(1)
}
