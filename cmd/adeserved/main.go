// Command adeserved is the long-running ADE compile-and-execute
// daemon: it accepts MEMOIR (.mir) programs over HTTP, compiles them
// through the full ADE pipeline, and executes them on either engine
// under per-request QoS budgets. Compiled artifacts live in a
// content-addressed cache keyed by (canonical program hash, options
// fingerprint), so repeat requests skip parse + ADE + compile.
//
// Usage:
//
//	adeserved                          # serve on :8372
//	adeserved -addr :9000 -workers 8
//	adeserved -selftest                # in-process load harness, then exit
//
// Endpoints:
//
//	POST /v1/run      compile (cached) and execute; JSON body or raw
//	                  .mir with query params (see README)
//	POST /v1/compile  compile (cached) only
//	GET  /v1/stats    cache ratios, phase counters, latency, telemetry
//	GET  /v1/profile  live adeprofile/v1 merged from recorded runs
//	GET  /healthz     liveness
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memoir/internal/server"
	"memoir/internal/server/loadtest"
)

func main() {
	def := server.DefaultConfig()
	var (
		addr         = flag.String("addr", def.Addr, "listen address")
		workers      = flag.Int("workers", def.Workers, "worker-pool size (compile/execute concurrency)")
		backlog      = flag.Int("backlog", def.Backlog, "queued requests beyond the workers before shedding 503 (negative = none)")
		cacheEntries = flag.Int("cache-entries", def.CacheEntries, "max compiled artifacts in the cache")
		cacheBytes   = flag.Int64("cache-bytes", def.CacheBytes, "max modeled bytes of cached artifacts")
		maxBody      = flag.Int64("max-body", def.MaxBodyBytes, "max request body bytes")
		maxProgram   = flag.Int("max-program", def.MaxProgramBytes, "max .mir program bytes inside a request")
		maxSteps     = flag.Uint64("max-steps", def.DefaultMaxSteps, "default per-request step budget")
		ceilSteps    = flag.Uint64("ceil-steps", def.CeilMaxSteps, "hard per-request step ceiling (requests are clamped)")
		maxMem       = flag.Int64("max-mem", def.DefaultMaxMem, "default per-request modeled-memory budget, bytes")
		ceilMem      = flag.Int64("ceil-mem", def.CeilMaxMem, "hard per-request memory ceiling, bytes")
		timeout      = flag.Duration("timeout", def.DefaultTimeout, "default per-request deadline")
		ceilTimeout  = flag.Duration("ceil-timeout", def.CeilTimeout, "hard per-request deadline ceiling")
		sandbox      = flag.Bool("sandbox", def.Sandbox, "run ADE sub-passes sandboxed with rollback (production posture)")
		profSample   = flag.Int("profile-sample", def.ProfileSample, "record telemetry on every Nth executed request and fold it into the live profile at GET /v1/profile (0 = opt-in telemetry only)")
		accessLog    = flag.String("access-log", "-", "structured JSON access log: \"-\" = stdout, \"\" = off, else a file path")

		storeDir    = flag.String("store", "", "durable artifact/profile store directory (empty = in-memory only)")
		persistProf = flag.Bool("persist-profile", false, "snapshot the live fleet profile into the store and merge it back on restart (requires -store)")
		profSnap    = flag.Duration("profile-snapshot", def.ProfileSnapshotEvery, "periodic profile snapshot interval (<0 = on-drain only)")
		qThreshold  = flag.Int("quarantine-threshold", def.BreakerThreshold, "circuit breaker: consecutive panics/budget blowouts before a program hash is quarantined (<0 = disabled)")
		qBackoff    = flag.Duration("quarantine-backoff", def.BreakerBackoff, "circuit breaker: first open interval; doubles per re-trip")
		qMaxBackoff = flag.Duration("quarantine-max-backoff", def.BreakerMaxBackoff, "circuit breaker: open interval cap")
		storeFault  = flag.String("store-fault", "", "inject a deterministic store I/O fault (write-fail:N|torn-write:N|corrupt-on-read:N) — tests only")

		selftest   = flag.Bool("selftest", false, "run the in-process load harness (cold/hot/mixed phases) and exit")
		chaos      = flag.Bool("chaos", false, "with -selftest: run the chaos harness (store faults + hard restarts) instead of the load phases")
		stRequests = flag.Int("selftest-requests", 200, "selftest: requests per phase (chaos: total across epochs, min 500)")
		stConc     = flag.Int("selftest-concurrency", 8, "selftest: concurrent clients")
		stEngine   = flag.String("selftest-engine", "vm", "selftest: execution engine (vm|interp)")
	)
	flag.Parse()

	cfg := def
	cfg.Addr = *addr
	cfg.Workers = *workers
	cfg.Backlog = *backlog
	cfg.CacheEntries = *cacheEntries
	cfg.CacheBytes = *cacheBytes
	cfg.MaxBodyBytes = *maxBody
	cfg.MaxProgramBytes = *maxProgram
	cfg.DefaultMaxSteps = *maxSteps
	cfg.CeilMaxSteps = *ceilSteps
	cfg.DefaultMaxMem = *maxMem
	cfg.CeilMaxMem = *ceilMem
	cfg.DefaultTimeout = *timeout
	cfg.CeilTimeout = *ceilTimeout
	cfg.Sandbox = *sandbox
	cfg.ProfileSample = *profSample
	cfg.StoreDir = *storeDir
	cfg.PersistProfile = *persistProf
	cfg.ProfileSnapshotEvery = *profSnap
	cfg.BreakerThreshold = *qThreshold
	cfg.BreakerBackoff = *qBackoff
	cfg.BreakerMaxBackoff = *qMaxBackoff
	cfg.StoreFault = *storeFault

	if *selftest {
		cfg.AccessLog = nil
		if *chaos {
			os.Exit(runChaosSelftest(*stRequests, *stConc, *stEngine, *storeDir))
		}
		os.Exit(runSelftest(cfg, *stRequests, *stConc, *stEngine))
	}

	var logClose io.Closer
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		cfg.AccessLog = f
		logClose = f
	}

	s, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- s.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "adeserved listening on %s (workers=%d cache=%d entries/%d MiB sandbox=%t)\n",
		cfg.Addr, cfg.Workers, cfg.CacheEntries, cfg.CacheBytes>>20, cfg.Sandbox)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "adeserved: %v; draining in-flight requests\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "adeserved: shutdown: %v\n", err)
		}
		if logClose != nil {
			logClose.Close()
		}
		cs := s.CacheStats()
		fmt.Fprintf(os.Stderr, "adeserved: bye (cache: %d hits, %d misses, %.1f%% hit ratio)\n",
			cs.Hits, cs.Misses, 100*cs.HitRatio())
	}
}

// runSelftest runs the load harness against an in-process handler and
// prints the phase table; exit status 1 if the cache demonstrably did
// not work (hot phase must be all hits, cold all misses).
func runSelftest(cfg server.Config, requests, concurrency int, engine string) int {
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selftest: %v\n", err)
		return 1
	}
	defer s.Shutdown(context.Background())
	phases, err := loadtest.Run(s.Handler(), loadtest.Config{
		Requests:    requests,
		Concurrency: concurrency,
		Engine:      engine,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "selftest: %v\n", err)
		return 1
	}
	fmt.Printf("adeserved selftest: %d requests/phase, %d clients, engine=%s\n\n",
		requests, concurrency, engine)
	fmt.Print(loadtest.Format(phases))
	cs := s.CacheStats()
	fmt.Printf("\ncache: %d hits, %d misses, %d evictions, %d entries, %.1f%% hit ratio\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries, 100*cs.HitRatio())
	ok := true
	for _, p := range phases {
		if p.Errors > 0 {
			fmt.Fprintf(os.Stderr, "selftest: phase %s had %d errors\n", p.Name, p.Errors)
			ok = false
		}
		switch p.Name {
		case "hot":
			if p.CacheHits != p.Requests {
				fmt.Fprintf(os.Stderr, "selftest: hot phase hit %d/%d — cache not working\n", p.CacheHits, p.Requests)
				ok = false
			}
		case "cold":
			if p.CacheHits != 0 {
				fmt.Fprintf(os.Stderr, "selftest: cold phase hit the cache %d times — noCache broken\n", p.CacheHits)
				ok = false
			}
		}
	}
	if !ok {
		return 1
	}
	var cold, hot loadtest.Phase
	for _, p := range phases {
		if p.Name == "cold" {
			cold = p
		}
		if p.Name == "hot" {
			hot = p
		}
	}
	if cold.ReqPerSec > 0 {
		fmt.Printf("hot/cold throughput: %.2fx\n", hot.ReqPerSec/cold.ReqPerSec)
	}
	return 0
}

// runChaosSelftest runs the chaos harness: interleaved requests,
// injected store faults, and hard server restarts against one durable
// store directory. Exit status 1 if ANY answer was wrong, or if the
// restarts demonstrably failed to recover state (no recovered hits).
func runChaosSelftest(requests, concurrency int, engine, storeDir string) int {
	if requests < 500 {
		requests = 500 // the acceptance floor: ≥500 interleaved requests
	}
	cleanup := false
	if storeDir == "" {
		d, err := os.MkdirTemp("", "adeserved-chaos-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			return 1
		}
		storeDir = d
		cleanup = true
	}
	rep, err := loadtest.RunChaos(loadtest.ChaosConfig{
		Requests:    requests,
		Concurrency: concurrency,
		Engine:      engine,
		StoreDir:    storeDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}
	fmt.Print(loadtest.FormatChaos(rep))
	ok := true
	if rep.Wrong != 0 {
		fmt.Fprintf(os.Stderr, "chaos: %d WRONG answers — crash safety is broken\n", rep.Wrong)
		ok = false
	}
	if rep.RecoveredHits == 0 {
		fmt.Fprintln(os.Stderr, "chaos: no recovered hits — restarts never served from recovered state")
		ok = false
	}
	if cleanup && ok {
		os.RemoveAll(storeDir)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "chaos: store left at %s for inspection\n", storeDir)
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adeserved:", err)
	os.Exit(1)
}
