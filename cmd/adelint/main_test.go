package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGoldenCorpus locks the text and JSON output formats on the lint
// corpus: one deliberate instance of each diagnostic code.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "lint", "*.mir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("lint corpus has %d files, want at least one per diagnostic code", len(files))
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(path)
		stem := strings.TrimSuffix(path, ".mir")
		for _, mode := range []struct {
			json   bool
			golden string
		}{
			{false, stem + ".golden"},
			{true, stem + ".json.golden"},
		} {
			var buf bytes.Buffer
			l := &linter{json: mode.json, out: &buf}
			l.lintSource(base, string(src), 0, false)
			if l.status == 2 {
				t.Fatalf("%s: lint failed hard", base)
			}
			if *update {
				if err := os.WriteFile(mode.golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(mode.golden)
			if err != nil {
				t.Fatalf("%s: %v (run with -update to create)", base, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s (json=%v): output mismatch\n--- got ---\n%s--- want ---\n%s",
					base, mode.json, buf.String(), want)
			}
		}
	}
}

// TestCorpusExitStatus checks the -werror/-severity exit contract on
// the corpus: error-grade codes (ADE001, ADE005) fail the run even
// without -werror; warning-grade codes fail only with it.
func TestCorpusExitStatus(t *testing.T) {
	cases := []struct {
		file       string
		status     int // without -werror
		werrStatus int
	}{
		{"ade001.mir", 1, 1},
		{"ade002.mir", 0, 1},
		{"ade003.mir", 0, 1},
		{"ade004.mir", 0, 1},
		{"ade005.mir", 1, 1},
		{"ade006.mir", 0, 1},
		{"ade007.mir", 0, 1},
		{"ade008.mir", 0, 1},
		{"ade009.mir", 0, 1},
	}
	for _, c := range cases {
		path := filepath.Join("..", "..", "testdata", "lint", c.file)
		for _, werr := range []bool{false, true} {
			var buf bytes.Buffer
			l := &linter{werror: werr, out: &buf}
			l.lintFile(path, false)
			want := c.status
			if werr {
				want = c.werrStatus
			}
			if l.status != want {
				t.Errorf("%s (werror=%v): status = %d, want %d", c.file, werr, l.status, want)
			}
		}
	}
}

// TestCheckedInSourcesClean asserts the repository's own .mir programs
// and the examples' embedded sources produce zero diagnostics.
func TestCheckedInSourcesClean(t *testing.T) {
	mirs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.mir"))
	if err != nil || len(mirs) == 0 {
		t.Fatalf("no testdata .mir files found (err=%v)", err)
	}
	var buf bytes.Buffer
	l := &linter{werror: true, out: &buf}
	for _, m := range mirs {
		l.lintFile(m, false)
	}
	l.lintExamples(filepath.Join("..", "..", "examples"))
	if l.status != 0 || buf.Len() != 0 {
		t.Errorf("checked-in sources not lint-clean (status=%d):\n%s", l.status, buf.String())
	}
}

// TestBenchSuiteClean asserts the post-ADE dumps of the whole
// benchmark suite (all variants) produce zero diagnostics — in
// particular, that redundant-translation elimination leaves no ADE003
// residues behind.
func TestBenchSuiteClean(t *testing.T) {
	if testing.Short() {
		t.Skip("transforms the full suite")
	}
	var buf bytes.Buffer
	l := &linter{werror: true, out: &buf}
	l.lintBench()
	if l.status != 0 || buf.Len() != 0 {
		t.Errorf("benchmark suite not lint-clean (status=%d):\n%s", l.status, buf.String())
	}
}
