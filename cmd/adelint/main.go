// Command adelint runs the dataflow-based static diagnostics over
// MEMOIR programs and reports stable-coded findings (ADE001..ADE009)
// with .mir line numbers.
//
// Usage:
//
//	adelint [flags] program.mir...
//	adelint -bench                      # lint post-ADE dumps of the suite
//	adelint -examples examples          # lint .mir sources embedded in Go examples
//	adelint -json -werror testdata/*.mir
//
// Inputs may be combined; the exit status is 1 when any error-grade
// diagnostic was reported (or any diagnostic at all under -werror),
// 2 on usage, I/O or parse failure, and 0 otherwise.
package main

import (
	"flag"
	"fmt"
	goast "go/ast"
	goparser "go/parser"
	gotoken "go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"memoir/internal/analysis"
	"memoir/internal/bench"
	"memoir/internal/core"
	"memoir/internal/ir"
	"memoir/internal/parser"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit one JSON report per input instead of text")
		werror   = flag.Bool("werror", false, "treat warnings as errors (any diagnostic fails the run)")
		ade      = flag.Bool("ade", false, "run Automatic Data Enumeration first and lint the transformed program")
		doBench  = flag.Bool("bench", false, "lint the benchmark suite: every program (and variant) is transformed by ADE, dumped with the IR printer, reparsed and linted")
		examples = flag.String("examples", "", "lint the backtick .mir sources embedded in DIR/*/main.go")
	)
	flag.Parse()
	if flag.NArg() == 0 && !*doBench && *examples == "" {
		fmt.Fprintln(os.Stderr, "usage: adelint [flags] program.mir... | adelint -bench | adelint -examples DIR")
		flag.PrintDefaults()
		os.Exit(2)
	}

	l := &linter{json: *jsonOut, werror: *werror, out: os.Stdout}
	for _, path := range flag.Args() {
		l.lintFile(path, *ade)
	}
	if *doBench {
		l.lintBench()
	}
	if *examples != "" {
		l.lintExamples(*examples)
	}
	os.Exit(l.status)
}

// linter accumulates the worst exit status across all inputs.
type linter struct {
	json   bool
	werror bool
	out    io.Writer
	status int
}

func (l *linter) fail(err error) {
	fmt.Fprintln(os.Stderr, "adelint:", err)
	l.status = 2
}

// report prints the diagnostics for one input and folds their severity
// into the exit status.
func (l *linter) report(label string, ds []Diag) {
	if l.json {
		if err := analysis.FormatJSON(l.out, label, ds); err != nil {
			l.fail(err)
		}
	} else {
		analysis.FormatText(l.out, label, ds)
	}
	if l.status == 2 {
		return
	}
	if analysis.HasErrors(ds) || (l.werror && len(ds) > 0) {
		l.status = max(l.status, 1)
	}
}

// Diag aliases the analysis diagnostic for brevity.
type Diag = analysis.Diagnostic

// lintSource parses and lints one textual program. Lint deliberately
// does not require ir.Verify to pass: the diagnostics are designed to
// explain programs the verifier rejects (ADE001 covers its scope rule
// with a stable code). Verification is enforced only before running
// the ADE transformation itself. lineOff shifts reported lines (for
// sources embedded inside another file).
func (l *linter) lintSource(label, src string, lineOff int, runADE bool) {
	prog, err := parser.Parse(src)
	if err != nil {
		l.fail(fmt.Errorf("%s: %w", label, err))
		return
	}
	if runADE {
		if err := ir.Verify(prog); err != nil {
			l.fail(fmt.Errorf("%s: verify: %w", label, err))
			return
		}
		if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
			l.fail(fmt.Errorf("%s: ade: %w", label, err))
			return
		}
	}
	ds := analysis.Lint(prog)
	for i := range ds {
		if ds[i].Line > 0 {
			ds[i].Line += lineOff
		}
	}
	l.report(label, ds)
}

func (l *linter) lintFile(path string, runADE bool) {
	src, err := os.ReadFile(path)
	if err != nil {
		l.fail(err)
		return
	}
	l.lintSource(path, string(src), 0, runADE)
}

// lintBench lints the post-ADE IR of the whole benchmark suite the way
// a build would see it: transformed, printed, and reparsed, so the
// diagnostics carry the dump's line numbers.
func (l *linter) lintBench() {
	for _, s := range bench.All() {
		for _, variant := range append([]string{""}, s.Variants...) {
			label := "bench:" + s.Abbr
			if variant != "" {
				label += "(" + variant + ")"
			}
			prog := s.Build(variant)
			if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
				l.fail(fmt.Errorf("%s: ade: %w", label, err))
				continue
			}
			l.lintSource(label, ir.Print(prog), 0, false)
		}
	}
}

// lintExamples scans DIR/*/main.go for backtick string literals that
// parse as MEMOIR programs and lints each, reporting lines relative to
// the enclosing Go file.
func (l *linter) lintExamples(dir string) {
	mains, err := filepath.Glob(filepath.Join(dir, "*", "main.go"))
	if err != nil {
		l.fail(err)
		return
	}
	if len(mains) == 0 {
		l.fail(fmt.Errorf("%s: no */main.go files found", dir))
		return
	}
	linted := 0
	for _, path := range mains {
		fset := gotoken.NewFileSet()
		f, err := goparser.ParseFile(fset, path, nil, 0)
		if err != nil {
			l.fail(err)
			continue
		}
		goast.Inspect(f, func(n goast.Node) bool {
			lit, ok := n.(*goast.BasicLit)
			if !ok || lit.Kind != gotoken.STRING || !strings.HasPrefix(lit.Value, "`") {
				return true
			}
			src := strings.Trim(lit.Value, "`")
			if _, err := parser.Parse(src); err != nil {
				return true // not a MEMOIR program; skip
			}
			// Content line k sits at Go line(lit) + k - 1.
			l.lintSource(path, src, fset.Position(lit.Pos()).Line-1, false)
			linted++
			return true
		})
	}
	if linted == 0 {
		l.fail(fmt.Errorf("%s: no embedded MEMOIR programs found", dir))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
