// Command adediff is the differential-testing and regression harness:
// it proves ADE semantics-preserving by running the benchmark suite
// (and, with -seed, randomly generated IR programs) under a
// configuration matrix and asserting byte-identical canonical outputs
// against the untransformed hash baseline.
//
// Usage:
//
//	adediff -scale test                  # full suite, full matrix
//	adediff -scale test -shard 1/4       # CI smoke slice
//	adediff -bench BFS,PTA -configs ade,ade-sparse
//	adediff -seed 1 -count 50            # random-program mode
//	adediff -enum 2                      # skeletal enumeration, bound 2
//	adediff -enum 3 -shard 2/4           # enumeration shard
//	adediff -enum-id skL:pm0.tms.dm0     # replay one skeleton by ID
//	adediff -faults                      # fault-injection sweep, full registry
//	adediff -fault enum-corrupt:100 -bench BFS
//	adediff -fuel 3 -bench BFS           # cap ADE at 3 rewrites (bisection)
//	adediff -list                        # print the matrix and exit
//	adediff -list-faults                 # print the fault registry and exit
//	adediff -list-enum                   # print the statement alphabet and exit
//
// The fault sweep injects each registered fault — one at a time, with
// a fresh deterministic injector per cell — and requires every fault
// to be rolled back, crash as a structured error, or surface as a
// "degraded" divergence triaged by fuel bisection to the first faulty
// rewrite; a fault that escapes containment fails the run.
//
// The enumeration mode walks every program skeleton up to the -enum
// statement bound (deterministically — the same bound always yields
// the same skeleton sequence) through the full matrix; a divergence
// names the skeleton's stable ID and its automatically reduced
// smallest failing prefix, either of which replays via -enum-id.
// Combining -enum with -fault injects that fault into every cell — the
// self-test proving the sweep can fail and reduce.
//
// The JSON report lands in -out (default difftest-report.json); the
// exit status is 1 when any cell diverged or errored.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"memoir/internal/core"
	"memoir/internal/difftest"
	"memoir/internal/faults"
)

func main() {
	var (
		scale      = flag.String("scale", "test", "workload scale: test, small, full")
		shard      = flag.String("shard", "", "run shard i/n of the work list (0-based)")
		benchs     = flag.String("bench", "", "comma-separated benchmark abbreviations (default: all)")
		configs    = flag.String("configs", "", "comma-separated config names (default: the full matrix)")
		seed       = flag.Int64("seed", 0, "random-program mode: first generator seed (0 = benchmark mode)")
		count      = flag.Int("count", 25, "random-program mode: number of seeds")
		enum       = flag.Int("enum", 0, "skeletal-enumeration mode: sweep all skeletons up to N statements (0 = off)")
		enumID     = flag.String("enum-id", "", "skeletal-enumeration mode: replay comma-separated skeleton IDs")
		listEnum   = flag.Bool("list-enum", false, "print the enumeration statement alphabet and exit")
		out        = flag.String("out", "difftest-report.json", "JSON report path (empty = don't write)")
		list       = flag.Bool("list", false, "print the configuration matrix and exit")
		check      = flag.Bool("check", false, "enable core's mid-pipeline invariant checking on every ADE column")
		fuel       = flag.Int("fuel", -1, "cap every ADE column at N rewrite units, for bisecting a diverging cell (-1 = unlimited, 0 = none)")
		faultSweep = flag.Bool("faults", false, "fault-injection mode: sweep every registered injection point")
		fault      = flag.String("fault", "", "fault-injection mode: comma-separated injection point names (see -list-faults)")
		listFaults = flag.Bool("list-faults", false, "print the fault-injection registry and exit")
		verbose    = flag.Bool("v", false, "log each cell as it runs")
	)
	flag.Parse()

	if *list {
		for _, c := range difftest.Matrix() {
			kind := "baseline"
			if c.ADE != nil {
				kind = "ade"
			}
			fmt.Printf("%-22s %-8s engine=%s\n", c.Name, kind, c.Engine)
		}
		return
	}
	if *listFaults {
		for _, p := range faults.Registry() {
			fmt.Printf("%-28s kind=%s\n", p.Name, p.Kind)
		}
		// The store I/O points are not part of the engine sweep (-faults
		// iterates the registry above); they are listed here because
		// this flag is the single catalog of injectable fault names.
		for _, p := range faults.IOPoints() {
			fmt.Printf("%-28s kind=%s  (store I/O; adeserved -store-fault / -selftest -chaos)\n", p.Name, p.Kind)
		}
		return
	}
	if *listEnum {
		desc := difftest.StatementDescriptions()
		for _, tok := range difftest.StatementTokens() {
			fmt.Printf("%-5s %s\n", tok, desc[tok])
		}
		for b := 1; b <= 3; b++ {
			fmt.Printf("bound %d: %d skeletons\n", b, difftest.SkeletonCount(b))
		}
		return
	}

	sh, err := difftest.ParseShard(*shard)
	if err != nil {
		fatal(err)
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	var rpt *difftest.Report
	switch {
	case *enum != 0 || *enumID != "":
		rpt, err = difftest.RunEnum(difftest.EnumOptions{
			Bound: *enum, IDs: splitList(*enumID), Shard: sh,
			Configs: splitList(*configs), Check: *check,
			Fault: *fault, Verbose: progress,
		})
	case *faultSweep || *fault != "":
		sc, perr := difftest.ParseScale(*scale)
		if perr != nil {
			fatal(perr)
		}
		rpt, err = difftest.RunFaults(difftest.FaultOptions{
			Scale: sc, Shard: sh,
			Benchmarks: splitList(*benchs), Configs: splitList(*configs),
			Faults: splitList(*fault), Verbose: progress,
		})
	case *seed != 0:
		rpt, err = difftest.RunRandom(difftest.RandomOptions{
			Seed: *seed, Count: *count, Shard: sh,
			Configs: splitList(*configs), Check: *check, Verbose: progress,
		})
	default:
		sc, perr := difftest.ParseScale(*scale)
		if perr != nil {
			fatal(perr)
		}
		rpt, err = difftest.Run(difftest.RunOptions{
			Scale: sc, Shard: sh,
			Benchmarks: splitList(*benchs), Configs: splitList(*configs),
			Check: *check, Fuel: core.FuelFromFlag(*fuel), Verbose: progress,
		})
	}
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := rpt.WriteFile(*out); err != nil {
			fatal(err)
		}
	}
	rpt.Summary(os.Stdout)
	if !rpt.OK() {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adediff:", err)
	os.Exit(2)
}
