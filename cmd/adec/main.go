// Command adec is the ADE compiler driver: it parses a textual MEMOIR
// program, runs Automatic Data Enumeration, and prints the transformed
// program along with a report of the enumeration decisions.
//
// Usage:
//
//	adec [flags] program.mir
//	adec -no-rte -report program.mir
//
// Flags mirror the artifact's compiler configurations: -no-rte,
// -no-propagation, -no-sharing, -no-static, -sparse. The robustness flags:
// -sandbox contains sub-pass failures by rolling the program back to
// its untransformed state, and -fuel N stops after the first N rewrite
// units, which bisects miscompiles to a single rewrite.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"memoir/internal/adeprofile"
	"memoir/internal/analysis"
	"memoir/internal/bytecode"
	"memoir/internal/collections"
	"memoir/internal/core"
	"memoir/internal/ir"
	"memoir/internal/opt"
	"memoir/internal/parser"
	"memoir/internal/remarks"
)

func main() {
	var (
		noRTE     = flag.Bool("no-rte", false, "disable redundant translation elimination (§III-C)")
		noProp    = flag.Bool("no-propagation", false, "disable identifier propagation (§III-E)")
		noShare   = flag.Bool("no-sharing", false, "disable enumeration sharing (§III-D); implies -no-propagation")
		noStatic  = flag.Bool("no-static", false, "disable static enumeration: provably-dense sites fall back to the runtime enumeration")
		sparse    = flag.Bool("sparse", false, "select SparseBitSet for enumerated sets")
		report    = flag.Bool("report", false, "print the enumeration report to stderr")
		check     = flag.Bool("check", false, "re-run the IR verifier and ADE invariant checks between every ADE sub-pass, and verify the compiled bytecode")
		sandbox   = flag.Bool("sandbox", false, "contain sub-pass failures: roll the program back to its untransformed state and continue instead of failing")
		fuel      = flag.Int("fuel", -1, "stop after N rewrite units, for bisecting miscompiles (-1 = unlimited, 0 = none)")
		parseOnly = flag.Bool("parse-only", false, "parse and verify only; do not transform")
		cleanup   = flag.Bool("O", false, "run constant folding and dead-code elimination after ADE")
		dump      = flag.Bool("dump-bytecode", false, "print the register bytecode for the (transformed) program instead of MEMOIR text")
		remarksTo = flag.String("remarks", "", "write optimization remarks to `file` (\"-\" = stderr; .json suffix selects JSON)")
		traceTo   = flag.String("trace", "", "write a Chrome trace_event JSON of the ADE sub-passes to `file`")
		profileIn = flag.String("profile", "", "guide the benefit heuristic and implementation selection by an adeprofile/v1 `file` (memoir-run -profile-out); a stale profile warns and falls back to the static heuristics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: adec [flags] program.mir")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := ir.Verify(prog); err != nil {
		fatal(fmt.Errorf("verify: %w", err))
	}
	// Suspect pragmas never change semantics but silently steer (or
	// fail to steer) the pass; reject them up front.
	for _, d := range analysis.CheckPragmas(prog) {
		if d.Severity == analysis.SevError {
			fatal(fmt.Errorf("%s: %s", flag.Arg(0), d))
		}
		fmt.Fprintf(os.Stderr, "adec: warning: %s: %s\n", flag.Arg(0), d)
	}
	if *parseOnly {
		fmt.Fprintln(os.Stderr, "ok")
		return
	}
	opts := core.DefaultOptions()
	opts.RTE = !*noRTE
	opts.Propagation = !*noProp && !*noShare
	opts.Sharing = !*noShare
	opts.StaticEnum = !*noStatic
	opts.Check = *check
	opts.Sandbox = *sandbox
	opts.Fuel = core.FuelFromFlag(*fuel)
	if *sparse {
		opts.SetImpl = collections.ImplSparseBitSet
	}
	if *profileIn != "" {
		p, err := adeprofile.ReadFile(*profileIn)
		if err != nil {
			fatal(fmt.Errorf("profile: %w", err))
		}
		opts.SiteProfile = p
	}
	var em *remarks.Emitter
	if *remarksTo != "" || *traceTo != "" {
		em = remarks.NewEmitter()
		opts.Remarks = em
	}
	rep, err := core.Apply(prog, opts)
	if err != nil {
		fatal(err)
	}
	// A sandboxed rollback still compiles successfully, but the user
	// should hear that the output is the unoptimized program.
	for _, d := range rep.Degraded {
		fmt.Fprintf(os.Stderr, "adec: warning: degraded: %s\n", d)
	}
	// Same contract for a stale profile: the compile succeeded, but the
	// static heuristics decided everything.
	if strings.HasPrefix(rep.Profile, "stale") {
		fmt.Fprintf(os.Stderr, "adec: warning: profile %s\n", rep.Profile)
	}
	if *fuel >= 0 {
		fmt.Fprintf(os.Stderr, "adec: fuel: %d rewrite unit(s) performed\n", rep.Rewrites)
	}
	if *remarksTo != "" {
		if err := writeOut(*remarksTo, func(w io.Writer) error {
			if strings.HasSuffix(*remarksTo, ".json") {
				return em.WriteJSON(w)
			}
			return em.WriteText(w)
		}); err != nil {
			fatal(fmt.Errorf("remarks: %w", err))
		}
	}
	if *traceTo != "" {
		if err := writeOut(*traceTo, em.WriteTrace); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
	if err := ir.Verify(prog); err != nil {
		fatal(fmt.Errorf("verify after ADE: %w", err))
	}
	if *report {
		fmt.Fprint(os.Stderr, rep)
	}
	if *cleanup {
		n := opt.Cleanup(prog)
		if err := ir.Verify(prog); err != nil {
			fatal(fmt.Errorf("verify after cleanup: %w", err))
		}
		fmt.Fprintf(os.Stderr, "cleanup: %d instructions folded or removed\n", n)
	}
	if *check || *dump {
		bc, err := bytecode.Compile(prog)
		if err != nil {
			fatal(fmt.Errorf("bytecode: %w", err))
		}
		// The bytecode verifier closes the gap the IR verifier cannot
		// see: a miscompile producing structurally bad bytecode dies
		// here with a function+pc position instead of becoming a bad
		// artifact.
		if *dump {
			for _, f := range bc.Funcs {
				verdict := "ok"
				if err := bytecode.VerifyFunc(bc, f); err != nil {
					verdict = err.Error()
				}
				fmt.Printf(";; verify @%s: %s\n", f.Name, verdict)
			}
		}
		if err := bytecode.Verify(bc); err != nil {
			fatal(err)
		}
		if *dump {
			fmt.Print(bytecode.Disasm(bc))
			return
		}
	}
	fmt.Print(ir.Print(prog))
}

// writeOut streams fn to the named file, with "-" meaning stderr (so
// remarks can interleave with -report on a terminal).
func writeOut(name string, fn func(io.Writer) error) error {
	if name == "-" {
		return fn(os.Stderr)
	}
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adec:", err)
	os.Exit(1)
}
