// Command adebench regenerates the paper's tables and figures.
//
// Usage:
//
//	adebench -all                        # everything
//	adebench -fig 5 -scale small         # one figure
//	adebench -table 2 -trials 5
//	adebench -rq4
//
// Figures: 4, 5, 6, 7a, 7b, 7c, 8, 9, 10. Tables: 2, 3.
//
// The op-count regression gate (CI):
//
//	adebench -scale test -counts testdata/baseline_counts.json   # (re)generate baseline
//	adebench -scale test -gate testdata/baseline_counts.json     # fail on >5% regressions
//
// The gate compares deterministic interpreter op counts, not wall
// clock, so it is stable on shared CI runners.
//
// Profile collection:
//
//	adebench -profile-out suite.adeprofile.json   # suite-merged adeprofile/v1
//	adebench -pgo                                 # profile-guided extension study
//
// The merged profile feeds back through adec -profile (or
// core.Options.SiteProfile); see DESIGN.md §13.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"memoir/internal/bench"
	"memoir/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate (4,5,6,7a,7b,7c,8,9,10)")
		tab     = flag.String("table", "", "table to regenerate (2,3)")
		rq4     = flag.Bool("rq4", false, "run the RQ4 PTA case study")
		pgo     = flag.Bool("pgo", false, "run the profile-guided heuristic extension study")
		all     = flag.Bool("all", false, "regenerate everything")
		scale   = flag.String("scale", "small", "workload scale: test, small, full")
		trials  = flag.Int("trials", 3, "timing trials per configuration (median reported)")
		outDir  = flag.String("out", "", "also write each experiment's table to <dir>/<name>.txt (artifact style)")
		counts  = flag.String("counts", "", "write the op-count baseline to this file and exit")
		gate    = flag.String("gate", "", "compare current op counts against this baseline, failing on regressions")
		tol     = flag.Float64("tol", 0.05, "op-count regression tolerance for -gate (0.05 = 5%)")
		engine  = flag.String("engine", "interp", "execution engine for -counts/-gate: interp or vm (counts are engine-invariant)")
		jsonTo  = flag.String("json", "", "write a machine-readable per-benchmark report (adebench-report/v1) to `file` (\"-\" = stdout) and exit")
		profOut = flag.String("profile-out", "", "profile one untransformed run of every benchmark, merge the shards, write the adeprofile/v1 document to `file`, and exit")

		maxSteps = flag.Uint64("max-steps", 0, "per-execution step budget; exhausting it fails with a structured error (0 = unlimited)")
		maxMem   = flag.Int64("max-mem", 0, "per-execution modeled live-memory budget in bytes (0 = unlimited)")
		timeout  = flag.Duration("timeout", 0, "per-execution wall-clock deadline (0 = none)")
	)
	flag.Parse()
	bud := experiments.Budget{MaxSteps: *maxSteps, MaxBytes: *maxMem, Timeout: *timeout}

	var sc bench.Scale
	switch *scale {
	case "test":
		sc = bench.ScaleTest
	case "small":
		sc = bench.ScaleSmall
	case "full":
		sc = bench.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	eng, err := bench.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *profOut != "" {
		p, err := experiments.CollectSuiteProfile(sc)
		if err == nil {
			err = p.WriteFile(*profOut)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote merged profile for %d benchmarks to %s (fingerprint %s)\n",
			len(p.Programs), *profOut, p.Fingerprint())
		return
	}
	if *jsonTo != "" {
		rep, err := experiments.CollectBenchReport(sc, eng, bud)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := io.Writer(os.Stdout)
		if *jsonTo != "-" {
			f, err := os.Create(*jsonTo)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := experiments.WriteBenchReport(rep, w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *counts != "" {
		c, err := experiments.CollectCounts(sc, eng, bud)
		if err == nil {
			err = experiments.WriteCounts(c, *counts)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote op-count baseline for %d benchmarks to %s\n", len(c.Counts), *counts)
		return
	}
	if *gate != "" {
		if err := experiments.Gate(sc, *gate, *tol, eng, bud, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Scale: sc, Trials: *trials, Out: os.Stdout, Budget: bud}

	type job struct {
		name string
		run  func(experiments.Config) error
	}
	jobs := map[string]job{
		"fig4":   {"Figure 4", experiments.Fig4},
		"fig5":   {"Figure 5", experiments.Fig5},
		"fig6":   {"Figure 6", experiments.Fig6},
		"fig7a":  {"Figure 7a", experiments.Fig7a},
		"fig7b":  {"Figure 7b", experiments.Fig7b},
		"fig7c":  {"Figure 7c", experiments.Fig7c},
		"fig8":   {"Figure 8", experiments.Fig8},
		"fig9":   {"Figure 9", experiments.Fig9},
		"fig10":  {"Figure 10", experiments.Fig10},
		"table2": {"Table II", experiments.Table2},
		"table3": {"Table III", experiments.Table3},
		"rq4":    {"RQ4", experiments.RQ4},
		"pgo":    {"PGO extension", experiments.PGO},
	}
	order := []string{"fig4", "fig5", "fig6", "table2", "table3", "fig7a", "fig7b", "fig7c", "fig8", "rq4", "fig9", "fig10", "pgo"}

	var selected []string
	switch {
	case *all:
		selected = order
	case *fig != "":
		selected = []string{"fig" + *fig}
	case *tab != "":
		selected = []string{"table" + *tab}
	case *rq4:
		selected = []string{"rq4"}
	case *pgo:
		selected = []string{"pgo"}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, name := range selected {
		j, ok := jobs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		runCfg := cfg
		var f *os.File
		if *outDir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outDir, name+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runCfg.Out = io.MultiWriter(os.Stdout, f)
		}
		err := j.run(runCfg)
		if f != nil {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, err)
			os.Exit(1)
		}
	}
}
