package memoir

// Benchmarks regenerating every table and figure of the paper's
// evaluation (the per-experiment index of DESIGN.md). Each benchmark
// iteration executes the corresponding experiment pipeline at test
// scale; run the adebench command for the full-scale numbers.

import (
	"io"
	"math"
	"testing"

	"memoir/internal/bench"
	"memoir/internal/core"
	"memoir/internal/experiments"
	"memoir/internal/interp"
)

func cfg() experiments.Config {
	return experiments.Config{Scale: bench.ScaleTest, Trials: 1, Out: io.Discard}
}

func runExperiment(b *testing.B, f func(experiments.Config) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := f(cfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4OpBreakdown regenerates Figure 4 (operation breakdown
// and benchmark clustering).
func BenchmarkFig4OpBreakdown(b *testing.B) { runExperiment(b, experiments.Fig4) }

// BenchmarkFig5Headline regenerates Figure 5 (whole-program and ROI
// speedup plus memory of ADE vs MEMOIR) and reports the geomean
// modeled speedup as a metric.
func BenchmarkFig5Headline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := experiments.RunSuite(experiments.CfgMemoir, cfg())
		if err != nil {
			b.Fatal(err)
		}
		ade, err := experiments.RunSuite(experiments.CfgADE, cfg())
		if err != nil {
			b.Fatal(err)
		}
		prod, n := 1.0, 0
		for abbr, m := range base {
			prod *= m.Modeled[interp.ArchIntelX64].Whole / ade[abbr].Modeled[interp.ArchIntelX64].Whole
			n++
		}
		b.ReportMetric(math.Pow(prod, 1/float64(n)), "geo-speedup")
	}
}

// BenchmarkFig6AArch64 regenerates Figure 6 (AArch64 replay).
func BenchmarkFig6AArch64(b *testing.B) { runExperiment(b, experiments.Fig6) }

// BenchmarkTable2Accesses regenerates Table II (sparse/dense access
// counts).
func BenchmarkTable2Accesses(b *testing.B) { runExperiment(b, experiments.Table2) }

// BenchmarkTable3PerOp regenerates Table III (per-operation speedups
// of each implementation vs Hash{Set,Map}).
func BenchmarkTable3PerOp(b *testing.B) { runExperiment(b, experiments.Table3) }

// BenchmarkFig7aNoRTE regenerates Figure 7a (ablation: RTE disabled).
func BenchmarkFig7aNoRTE(b *testing.B) { runExperiment(b, experiments.Fig7a) }

// BenchmarkFig7bNoPropagation regenerates Figure 7b (ablation:
// propagation disabled).
func BenchmarkFig7bNoPropagation(b *testing.B) { runExperiment(b, experiments.Fig7b) }

// BenchmarkFig7cNoSharing regenerates Figure 7c (ablation: sharing
// disabled).
func BenchmarkFig7cNoSharing(b *testing.B) { runExperiment(b, experiments.Fig7c) }

// BenchmarkFig8MemoryNoSharing regenerates Figure 8 (memory with
// sharing disabled).
func BenchmarkFig8MemoryNoSharing(b *testing.B) { runExperiment(b, experiments.Fig8) }

// BenchmarkRQ4PTADirectives regenerates the RQ4 case study (PTA tuned
// with directives).
func BenchmarkRQ4PTADirectives(b *testing.B) { runExperiment(b, experiments.RQ4) }

// BenchmarkFig9Swiss regenerates Figure 9 (speedup with/against
// Swiss{Set,Map}).
func BenchmarkFig9Swiss(b *testing.B) { runExperiment(b, experiments.Fig9) }

// BenchmarkFig10SwissMemory regenerates Figure 10 (memory
// with/against Swiss{Set,Map}).
func BenchmarkFig10SwissMemory(b *testing.B) { runExperiment(b, experiments.Fig10) }

// BenchmarkPGOExtension regenerates the profile-guided heuristic study
// (the §III-C extension implemented as future work).
func BenchmarkPGOExtension(b *testing.B) { runExperiment(b, experiments.PGO) }

// BenchmarkEngineVMvsInterp runs the full benchmark suite on both
// execution engines and reports the per-iteration ROI wall time plus
// the geomean VM-over-interpreter ROI speedup as a metric. The op
// counts of the two engines are asserted identical on every run, so
// the speedup is pure dispatch efficiency, not a workload difference.
func BenchmarkEngineVMvsInterp(b *testing.B) {
	for _, s := range bench.All() {
		s := s
		wall := map[bench.Engine]float64{}
		var steps map[bench.Engine]uint64
		for _, eng := range bench.Engines() {
			eng := eng
			b.Run(s.Abbr+"/"+eng.String(), func(b *testing.B) {
				prog := s.Build("")
				if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
				best := math.Inf(1)
				var st uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := bench.ExecuteOn(s, prog, interp.DefaultOptions(), bench.ScaleTest, eng)
					if err != nil {
						b.Fatal(err)
					}
					best = math.Min(best, res.WallROI.Seconds())
					st = res.ROIStats.Steps
				}
				b.StopTimer()
				if steps == nil {
					steps = map[bench.Engine]uint64{}
				}
				wall[eng], steps[eng] = best, st
				b.ReportMetric(best*1e9, "roi-ns/run")
			})
		}
		sI, okI := steps[bench.EngineInterp]
		sV, okV := steps[bench.EngineVM]
		if okI && okV && sI != sV {
			b.Fatalf("%s: engines disagree on ROI steps: interp=%d vm=%d", s.Abbr, sI, sV)
		}
		if wall[bench.EngineVM] > 0 {
			b.Logf("%s: vm speedup %.2fx", s.Abbr, wall[bench.EngineInterp]/wall[bench.EngineVM])
		}
	}
}

// BenchmarkADECompile measures the compiler pass itself over the whole
// benchmark suite (not a paper figure; useful when hacking on the
// pass).
func BenchmarkADECompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range bench.All() {
			prog := s.Build("")
			if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
}
