module memoir

go 1.22
