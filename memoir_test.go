package memoir

import (
	"strings"
	"testing"
)

const histSrc = `
fn u64 @main(): exported
  %input := new Seq<u64>()
  do:
    %i := phi(0, %i1)
    %in0 := phi(%input, %in1)
    %v := rem(%i, 7)
    %sparse := mul(%v, 982451653)
    %in1 := insert(%in0, end, %sparse)
    %i1 := add(%i, 1)
    %more := lt(%i1, 500)
  while %more
  %inF := phi(%in0)
  %hist := new Map<u64,u32>()
  for [%i2, %val] in %inF:
    %hist0 := phi(%hist, %hist3)
    %cond := has(%hist0, %val)
    if %cond:
      %freq := read(%hist0, %val)
    else:
      %hist1 := insert(%hist0, %val)
    %freq0 := phi(%freq, 0)
    %hist2 := phi(%hist0, %hist1)
    %freq1 := add(%freq0, 1)
    %hist3 := write(%hist2, %val, %freq1)
  %histF := phi(%hist0)
  for [%k, %f] in %histF:
    %got := read(%histF, %k)
    %g64 := cast<u64>(%got)
    %kv := add(%k, %g64)
    emit(%kv)
  %n := size(%histF)
  ret %n
`

func TestCompileAndRun(t *testing.T) {
	base, err := Compile(histSrc, WithoutADE())
	if err != nil {
		t.Fatal(err)
	}
	ade, err := Compile(histSrc)
	if err != nil {
		t.Fatal(err)
	}
	if ade.Report == "" {
		t.Fatal("ADE produced no report")
	}
	if !strings.Contains(ade.Text(), "Map{BitMap}<idx,u32>") {
		t.Fatalf("ADE did not rewrite the map type:\n%s", ade.Text())
	}
	rb, err := base.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := ade.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Value != 7 || ra.Value != rb.Value {
		t.Fatalf("values: base=%d ade=%d", rb.Value, ra.Value)
	}
	if rb.Checksum != ra.Checksum || rb.Outputs != ra.Outputs {
		t.Fatal("ADE changed observable output")
	}
	if ra.Sparse >= rb.Sparse || ra.Dense <= rb.Dense {
		t.Fatalf("access mix did not shift: sparse %d->%d dense %d->%d",
			rb.Sparse, ra.Sparse, rb.Dense, ra.Dense)
	}
}

func TestCompileOptions(t *testing.T) {
	for _, opt := range []Option{WithoutRTE(), WithoutPropagation(), WithoutSharing(), WithSparseSets(), WithSwissDefaults()} {
		p, err := Compile(histSrc, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run("main"); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWithEngine checks the façade's engine switch: the bytecode VM
// must reproduce the interpreter's result and deterministic
// measurements exactly, with and without ADE.
func TestWithEngine(t *testing.T) {
	for _, opts := range [][]Option{
		{WithoutADE()},
		nil,
		{WithSparseSets()},
	} {
		pi, err := Compile(histSrc, opts...)
		if err != nil {
			t.Fatal(err)
		}
		pv, err := Compile(histSrc, append(opts, WithEngine(EngineVM))...)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := pi.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		rv, err := pv.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		ri.Wall, rv.Wall = 0, 0
		if *ri != *rv {
			t.Fatalf("engines disagree:\n  interp: %+v\n  vm:     %+v", ri, rv)
		}
	}
}

func TestCompileRejectsBadProgram(t *testing.T) {
	if _, err := Compile("fn void @f():\n  %x := add(%ghost, 1)\n  ret\n"); err == nil {
		t.Fatal("bad program accepted")
	}
	if _, err := Parse("fn broken"); err == nil {
		t.Fatal("truncated program accepted")
	}
}

func TestSparseSetsOption(t *testing.T) {
	p, err := Compile(histSrc, WithSparseSets())
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Compile(histSrc, WithoutADE())
	rb, _ := base.Run("main")
	if r.Checksum != rb.Checksum {
		t.Fatal("sparse-set configuration changed output")
	}
}
