package memoir

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"memoir/internal/bench"
	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
)

// TestCrasherCorpus replays the checked-in crash/budget regression
// corpus (testdata/crashers) on both engines. Each .mir file carries
// its expectation in leading comment directives:
//
//	// expect: parse-error | verify-error | step-budget | mem-budget | runtime-error | ok
//	// ade                (apply the full ADE pipeline before running)
//	// max-steps: N       (step budget for the run)
//	// max-mem: N         (modeled live-memory budget, bytes)
//
// Every entry was once a live finding — a fuzz-discovered parser
// panic, or a budget/interruption shape the engines must contain —
// and the replay asserts the fixed behavior: no panics anywhere, the
// expected structured outcome, and engine-identical diagnostics and
// partial telemetry.
func TestCrasherCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "crashers", "*.mir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no crasher corpus found: %v", err)
	}
	for _, f := range files {
		t.Run(strings.TrimSuffix(filepath.Base(f), ".mir"), func(t *testing.T) {
			replayCrasher(t, f)
		})
	}
}

type crasherSpec struct {
	expect   string
	ade      bool
	maxSteps uint64
	maxBytes int64
}

var crasherDirective = regexp.MustCompile(`^// (expect|ade|max-steps|max-mem)(?::\s*(\S+))?\s*$`)

func parseCrasherSpec(src string) (crasherSpec, error) {
	var spec crasherSpec
	for _, line := range strings.Split(src, "\n") {
		m := crasherDirective.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		switch m[1] {
		case "expect":
			spec.expect = m[2]
		case "ade":
			spec.ade = true
		case "max-steps":
			n, err := strconv.ParseUint(m[2], 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad max-steps: %v", err)
			}
			spec.maxSteps = n
		case "max-mem":
			n, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad max-mem: %v", err)
			}
			spec.maxBytes = n
		}
	}
	switch spec.expect {
	case "parse-error", "verify-error", "step-budget", "mem-budget", "runtime-error", "ok":
		return spec, nil
	}
	return spec, fmt.Errorf("missing or unknown `// expect:` directive (got %q)", spec.expect)
}

var positionedErr = regexp.MustCompile(`^line \d+: `)

func replayCrasher(t *testing.T, path string) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped the toolchain: %v", r)
		}
	}()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(raw)
	spec, err := parseCrasherSpec(src)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}

	prog, err := parser.Parse(src)
	if spec.expect == "parse-error" {
		if err == nil {
			t.Fatalf("expected a parse error, got none")
		}
		if !positionedErr.MatchString(err.Error()) {
			t.Fatalf("parse error not positioned: %q", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	err = ir.Verify(prog)
	if spec.expect == "verify-error" {
		if err == nil {
			t.Fatalf("expected a verify error, got none")
		}
		return
	}
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if spec.ade {
		if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
			t.Fatalf("ade: %v", err)
		}
		if err := ir.Verify(prog); err != nil {
			t.Fatalf("verify after ade: %v", err)
		}
	}

	type outcome struct {
		kind     string
		errStr   string
		steps    uint64
		ret      uint64
		checksum uint64
	}
	runOn := func(eng bench.Engine) (o outcome) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("engine %s panicked: %v", eng, r)
			}
		}()
		iopts := interp.DefaultOptions()
		iopts.MaxSteps = spec.maxSteps
		iopts.MaxBytes = spec.maxBytes
		m, err := bench.NewMachine(prog, iopts, eng)
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		ret, err := m.Run("main")
		m.FinalizeMem()
		st := m.Stats()
		o.steps, o.ret, o.checksum = st.Steps, ret.I, st.EmitSum
		switch {
		case err == nil:
			o.kind = "ok"
		case errors.Is(err, interp.ErrStepBudget):
			o.kind = "step-budget"
		case errors.Is(err, interp.ErrMemBudget):
			o.kind = "mem-budget"
		default:
			o.kind = "runtime-error"
		}
		if err != nil {
			o.errStr = err.Error()
		}
		return o
	}

	oi := runOn(bench.EngineInterp)
	ov := runOn(bench.EngineVM)
	for _, o := range []outcome{oi, ov} {
		if o.kind != spec.expect {
			t.Fatalf("outcome %q (err %q), want %q", o.kind, o.errStr, spec.expect)
		}
	}
	// Engine parity: identical diagnostics, identical partial (or
	// final) telemetry.
	if oi.errStr != ov.errStr {
		t.Fatalf("engine error divergence:\n  interp: %q\n  vm:     %q", oi.errStr, ov.errStr)
	}
	if oi.steps != ov.steps {
		t.Fatalf("engine step divergence at interruption: interp %d vs vm %d", oi.steps, ov.steps)
	}
	if spec.expect == "ok" && (oi.ret != ov.ret || oi.checksum != ov.checksum) {
		t.Fatalf("engine output divergence: interp (ret %d, sum %d) vs vm (ret %d, sum %d)",
			oi.ret, oi.checksum, ov.ret, ov.checksum)
	}
}
