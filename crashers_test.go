package memoir

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"memoir/internal/bench"
	"memoir/internal/core"
	"memoir/internal/faults"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
	"memoir/internal/server/store"
)

// TestCrasherCorpus replays the checked-in crash/budget regression
// corpus (testdata/crashers) on both engines. Each .mir file carries
// its expectation in leading comment directives:
//
//	// expect: parse-error | verify-error | step-budget | mem-budget | runtime-error | ok
//	// ade                (apply the full ADE pipeline before running)
//	// max-steps: N       (step budget for the run)
//	// max-mem: N         (modeled live-memory budget, bytes)
//	// store-fault: P     (additionally replay a durable-store put/get
//	//                     cycle under injected I/O fault point P —
//	//                     write-fail:N | torn-write:N | corrupt-on-read:N —
//	//                     asserting the store degrades cleanly and never
//	//                     returns mangled data)
//
// Every entry was once a live finding — a fuzz-discovered parser
// panic, or a budget/interruption shape the engines must contain —
// and the replay asserts the fixed behavior: no panics anywhere, the
// expected structured outcome, and engine-identical diagnostics and
// partial telemetry.
func TestCrasherCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "crashers", "*.mir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no crasher corpus found: %v", err)
	}
	for _, f := range files {
		t.Run(strings.TrimSuffix(filepath.Base(f), ".mir"), func(t *testing.T) {
			replayCrasher(t, f)
		})
	}
}

type crasherSpec struct {
	expect     string
	ade        bool
	maxSteps   uint64
	maxBytes   int64
	storeFault string
}

var crasherDirective = regexp.MustCompile(`^// (expect|ade|max-steps|max-mem|store-fault)(?::\s*(\S+))?\s*$`)

func parseCrasherSpec(src string) (crasherSpec, error) {
	var spec crasherSpec
	for _, line := range strings.Split(src, "\n") {
		m := crasherDirective.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		switch m[1] {
		case "expect":
			spec.expect = m[2]
		case "ade":
			spec.ade = true
		case "max-steps":
			n, err := strconv.ParseUint(m[2], 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad max-steps: %v", err)
			}
			spec.maxSteps = n
		case "max-mem":
			n, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad max-mem: %v", err)
			}
			spec.maxBytes = n
		case "store-fault":
			if _, err := faults.ByName(m[2]); err != nil {
				return spec, fmt.Errorf("bad store-fault: %v", err)
			}
			spec.storeFault = m[2]
		}
	}
	switch spec.expect {
	case "parse-error", "verify-error", "step-budget", "mem-budget", "runtime-error", "ok":
		return spec, nil
	}
	return spec, fmt.Errorf("missing or unknown `// expect:` directive (got %q)", spec.expect)
}

var positionedErr = regexp.MustCompile(`^line \d+: `)

// replayStoreFault drives a durable-store put/get cycle for the
// crasher's program under the named injected I/O fault point and
// asserts the containment contract: the store degrades to a clean
// error, quarantines (never deletes) anything torn or corrupt, never
// returns mangled data, and serves the artifact intact once the
// one-shot fault has burned out.
func replayStoreFault(t *testing.T, prog *ir.Program, name, src string) {
	pt, err := faults.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInjector(faults.NewInjector(pt))
	entry := &store.Entry{
		ProgramHash: ir.ProgramHash(prog),
		OptionsFP:   "crasher",
		Program:     src,
		Size:        int64(len(src)),
	}
	putErr := s.PutArtifact(entry)
	got, getErr := s.GetArtifact(entry.ProgramHash, entry.OptionsFP)
	// The universal invariant, whatever the fault did: a served entry
	// is the exact bytes that were put — never a mangled one.
	if got != nil && got.Program != src {
		t.Fatalf("store served mangled program text under %s", pt.Name)
	}
	st := s.Stats()
	switch pt.Kind {
	case faults.IOWriteFail:
		if putErr == nil {
			t.Fatal("injected write failure did not surface as an error")
		}
		if got != nil || getErr != nil {
			t.Fatalf("failed write left a readable artifact behind (entry=%v, err=%v)", got != nil, getErr)
		}
		if st.WriteErrors == 0 {
			t.Fatalf("write error not counted: %+v", st)
		}
	case faults.IOTornWrite:
		// A torn write reports success — it is the on-disk shape a
		// kill -9 leaves behind; the crash happens after the ack.
		if putErr != nil {
			t.Fatalf("torn write must report success: %v", putErr)
		}
		if getErr == nil && got != nil {
			t.Fatal("torn artifact served intact")
		}
		if st.Quarantined == 0 {
			t.Fatalf("torn artifact not quarantined: %+v", st)
		}
	case faults.IOCorruptRead:
		if putErr != nil {
			t.Fatalf("put: %v", putErr)
		}
		if getErr == nil && got != nil {
			t.Fatal("corrupt read served as an intact artifact")
		}
		if st.Quarantined == 0 {
			t.Fatalf("corrupt artifact not quarantined: %+v", st)
		}
	}
	if pt.Kind != faults.IOWriteFail {
		// Quarantine renames aside; the bytes survive on disk.
		q, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.art"))
		if len(q) == 0 {
			t.Fatal("quarantine directory empty — the damaged file was deleted, not preserved")
		}
	}
	// Every registered I/O point is one-shot (fires on the N-th op):
	// after it burns out, a re-put round-trips clean.
	if err := s.PutArtifact(entry); err != nil {
		t.Fatalf("re-put after fault: %v", err)
	}
	got, getErr = s.GetArtifact(entry.ProgramHash, entry.OptionsFP)
	if getErr != nil || got == nil || got.Program != src {
		t.Fatalf("store did not recover once the fault burned out (entry=%v): %v", got != nil, getErr)
	}
}

func replayCrasher(t *testing.T, path string) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped the toolchain: %v", r)
		}
	}()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(raw)
	spec, err := parseCrasherSpec(src)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}

	prog, err := parser.Parse(src)
	if spec.expect == "parse-error" {
		if err == nil {
			t.Fatalf("expected a parse error, got none")
		}
		if !positionedErr.MatchString(err.Error()) {
			t.Fatalf("parse error not positioned: %q", err)
		}
		return
	}
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	err = ir.Verify(prog)
	if spec.expect == "verify-error" {
		if err == nil {
			t.Fatalf("expected a verify error, got none")
		}
		return
	}
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if spec.ade {
		if _, err := core.Apply(prog, core.DefaultOptions()); err != nil {
			t.Fatalf("ade: %v", err)
		}
		if err := ir.Verify(prog); err != nil {
			t.Fatalf("verify after ade: %v", err)
		}
	}

	type outcome struct {
		kind     string
		errStr   string
		steps    uint64
		ret      uint64
		checksum uint64
	}
	runOn := func(eng bench.Engine) (o outcome) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("engine %s panicked: %v", eng, r)
			}
		}()
		iopts := interp.DefaultOptions()
		iopts.MaxSteps = spec.maxSteps
		iopts.MaxBytes = spec.maxBytes
		m, err := bench.NewMachine(prog, iopts, eng)
		if err != nil {
			t.Fatalf("engine %s: %v", eng, err)
		}
		ret, err := m.Run("main")
		m.FinalizeMem()
		st := m.Stats()
		o.steps, o.ret, o.checksum = st.Steps, ret.I, st.EmitSum
		switch {
		case err == nil:
			o.kind = "ok"
		case errors.Is(err, interp.ErrStepBudget):
			o.kind = "step-budget"
		case errors.Is(err, interp.ErrMemBudget):
			o.kind = "mem-budget"
		default:
			o.kind = "runtime-error"
		}
		if err != nil {
			o.errStr = err.Error()
		}
		return o
	}

	if spec.storeFault != "" {
		replayStoreFault(t, prog, spec.storeFault, src)
	}

	oi := runOn(bench.EngineInterp)
	ov := runOn(bench.EngineVM)
	for _, o := range []outcome{oi, ov} {
		if o.kind != spec.expect {
			t.Fatalf("outcome %q (err %q), want %q", o.kind, o.errStr, spec.expect)
		}
	}
	// Engine parity: identical diagnostics, identical partial (or
	// final) telemetry.
	if oi.errStr != ov.errStr {
		t.Fatalf("engine error divergence:\n  interp: %q\n  vm:     %q", oi.errStr, ov.errStr)
	}
	if oi.steps != ov.steps {
		t.Fatalf("engine step divergence at interruption: interp %d vs vm %d", oi.steps, ov.steps)
	}
	if spec.expect == "ok" && (oi.ret != ov.ret || oi.checksum != ov.checksum) {
		t.Fatalf("engine output divergence: interp (ret %d, sum %d) vs vm (ret %d, sum %d)",
			oi.ret, oi.checksum, ov.ret, ov.checksum)
	}
}
