// Package memoir is a Go reproduction of "Automatic Data Enumeration
// for Fast Collections" (CGO 2026): a MEMOIR-style compiler IR with
// first-class SSA data collections, the Automatic Data Enumeration
// (ADE) transformation, the full collection-implementation selection
// space of the paper's Table I, and an instrumented interpreter that
// stands in for native code generation.
//
// This package is the public façade. Typical use:
//
//	prog, err := memoir.Compile(src)        // parse + ADE
//	res, err := prog.Run("main")
//	fmt.Println(res.Value, res.Checksum)
//
// The building blocks live under internal/: the IR and builder
// (internal/ir), the textual parser (internal/parser), the ADE pass
// (internal/core), the collection implementations
// (internal/collections), the interpreter (internal/interp), the
// benchmark suite (internal/bench) and the evaluation harness
// (internal/experiments). The cmd/ directory holds the adec compiler
// driver, the memoir-run executor and the adebench experiment runner.
package memoir

import (
	"fmt"
	"time"

	"memoir/internal/collections"
	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
	"memoir/internal/profile"
)

// Program is a parsed (and possibly ADE-transformed) MEMOIR program.
type Program struct {
	IR *ir.Program
	// Report describes the enumeration decisions when ADE ran.
	Report string

	set, mapI collections.Impl
}

// Option configures Compile.
type Option func(*config)

type config struct {
	ade  bool
	opts core.Options
	set  collections.Impl
	mapI collections.Impl
}

// WithoutADE parses and verifies only (the MEMOIR baseline).
func WithoutADE() Option { return func(c *config) { c.ade = false } }

// WithoutRTE disables redundant translation elimination (§III-C).
func WithoutRTE() Option { return func(c *config) { c.opts.RTE = false } }

// WithoutPropagation disables identifier propagation (§III-E).
func WithoutPropagation() Option { return func(c *config) { c.opts.Propagation = false } }

// WithoutSharing disables enumeration sharing (§III-D), which also
// disables propagation.
func WithoutSharing() Option {
	return func(c *config) { c.opts.Sharing = false; c.opts.Propagation = false }
}

// WithSparseSets selects SparseBitSet for enumerated sets (the
// ade-sparse configuration).
func WithSparseSets() Option {
	return func(c *config) { c.opts.SetImpl = collections.ImplSparseBitSet }
}

// WithSwissDefaults makes Swiss{Set,Map} the default implementation
// for unselected collections (the RQ5 comparison).
func WithSwissDefaults() Option {
	return func(c *config) {
		c.set = collections.ImplSwissSet
		c.mapI = collections.ImplSwissMap
	}
}

// Profile carries dynamic execution counts from a profiling run back
// into the benefit heuristic (the extension §III-C sketches).
type Profile = profile.Profile

// WithProfile weights the benefit heuristic by the given execution
// profile, so cold code contributes no benefit and cold collections
// are not enumerated.
func WithProfile(p Profile) Option {
	return func(c *config) { c.opts.Profile = p }
}

// CollectProfile executes entry and returns the per-instruction
// execution profile. Profiles are keyed stably, so a profile collected
// on one Compile of a source applies to another Compile of the same
// source.
func (p *Program) CollectProfile(entry string, args ...uint64) (Profile, error) {
	opts := interp.DefaultOptions()
	opts.CollectProfile = true
	ip := interp.New(p.IR, opts)
	vals := make([]interp.Val, len(args))
	for i, a := range args {
		vals[i] = interp.IntV(a)
	}
	if _, err := ip.Run(entry, vals...); err != nil {
		return nil, err
	}
	return ip.Profile(), nil
}

// Parse reads a textual MEMOIR program without transforming it.
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	return &Program{IR: p}, nil
}

// Compile parses src and applies Automatic Data Enumeration.
func Compile(src string, options ...Option) (*Program, error) {
	cfg := &config{ade: true, opts: core.DefaultOptions()}
	for _, o := range options {
		o(cfg)
	}
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	prog.set, prog.mapI = cfg.set, cfg.mapI
	if !cfg.ade {
		return prog, nil
	}
	rep, err := core.Apply(prog.IR, cfg.opts)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(prog.IR); err != nil {
		return nil, fmt.Errorf("verify after ADE: %w", err)
	}
	prog.Report = rep.String()
	return prog, nil
}

// Text renders the program in the paper's syntax.
func (p *Program) Text() string { return ir.Print(p.IR) }

// Result is one execution's outcome.
type Result struct {
	// Value is the entry function's u64 return value.
	Value uint64
	// Checksum and Outputs summarize the emitted output stream
	// (order-insensitive).
	Checksum uint64
	Outputs  uint64
	// Wall is the execution time; Sparse/Dense are the dynamic access
	// counts of Table II; Peak is the modeled peak resident size.
	Wall   time.Duration
	Sparse uint64
	Dense  uint64
	Peak   int64
}

// Run executes entry with optional u64 arguments.
func (p *Program) Run(entry string, args ...uint64) (*Result, error) {
	opts := interp.DefaultOptions()
	if p.set != collections.ImplNone {
		opts.DefaultSet = p.set
	}
	if p.mapI != collections.ImplNone {
		opts.DefaultMap = p.mapI
	}
	ip := interp.New(p.IR, opts)
	vals := make([]interp.Val, len(args))
	for i, a := range args {
		vals[i] = interp.IntV(a)
	}
	start := time.Now()
	ret, err := ip.Run(entry, vals...)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	ip.FinalizeMem()
	return &Result{
		Value:    ret.I,
		Checksum: ip.Stats.EmitSum,
		Outputs:  ip.Stats.EmitCount,
		Wall:     wall,
		Sparse:   ip.Stats.Sparse,
		Dense:    ip.Stats.Dense,
		Peak:     ip.Stats.PeakBytes,
	}, nil
}
