// Package memoir is a Go reproduction of "Automatic Data Enumeration
// for Fast Collections" (CGO 2026): a MEMOIR-style compiler IR with
// first-class SSA data collections, the Automatic Data Enumeration
// (ADE) transformation, the full collection-implementation selection
// space of the paper's Table I, and an instrumented interpreter that
// stands in for native code generation.
//
// This package is the public façade. Typical use:
//
//	prog, err := memoir.Compile(src)        // parse + ADE
//	res, err := prog.Run("main")
//	fmt.Println(res.Value, res.Checksum)
//
// The building blocks live under internal/: the IR and builder
// (internal/ir), the textual parser (internal/parser), the ADE pass
// (internal/core), the collection implementations
// (internal/collections), the interpreter (internal/interp), the
// benchmark suite (internal/bench) and the evaluation harness
// (internal/experiments). The cmd/ directory holds the adec compiler
// driver, the memoir-run executor and the adebench experiment runner.
package memoir

import (
	"fmt"
	"time"

	"memoir/internal/bytecode"
	"memoir/internal/collections"
	"memoir/internal/core"
	"memoir/internal/interp"
	"memoir/internal/ir"
	"memoir/internal/parser"
	"memoir/internal/profile"
	"memoir/internal/vm"
)

// Program is a parsed (and possibly ADE-transformed) MEMOIR program.
type Program struct {
	IR *ir.Program
	// Report describes the enumeration decisions when ADE ran.
	Report string

	set, mapI collections.Impl
	engine    Engine
}

// Option configures Compile.
type Option func(*config)

type config struct {
	ade    bool
	opts   core.Options
	set    collections.Impl
	mapI   collections.Impl
	engine Engine
}

// Engine selects the execution engine Run uses.
type Engine int

const (
	// EngineInterp is the instrumented tree-walking interpreter, the
	// measurement reference.
	EngineInterp Engine = iota
	// EngineVM lowers the program to register bytecode and runs it on
	// the fast VM. All deterministic measurements (checksums, access
	// counts, memory peaks) are identical to the interpreter's; only
	// wall-clock time changes.
	EngineVM
)

// WithEngine selects the execution engine for Run. The default is the
// interpreter.
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithoutADE parses and verifies only (the MEMOIR baseline).
func WithoutADE() Option { return func(c *config) { c.ade = false } }

// WithoutRTE disables redundant translation elimination (§III-C).
func WithoutRTE() Option { return func(c *config) { c.opts.RTE = false } }

// WithoutPropagation disables identifier propagation (§III-E).
func WithoutPropagation() Option { return func(c *config) { c.opts.Propagation = false } }

// WithoutSharing disables enumeration sharing (§III-D), which also
// disables propagation.
func WithoutSharing() Option {
	return func(c *config) { c.opts.Sharing = false; c.opts.Propagation = false }
}

// WithSparseSets selects SparseBitSet for enumerated sets (the
// ade-sparse configuration).
func WithSparseSets() Option {
	return func(c *config) { c.opts.SetImpl = collections.ImplSparseBitSet }
}

// WithSwissDefaults makes Swiss{Set,Map} the default implementation
// for unselected collections (the RQ5 comparison).
func WithSwissDefaults() Option {
	return func(c *config) {
		c.set = collections.ImplSwissSet
		c.mapI = collections.ImplSwissMap
	}
}

// Profile carries dynamic execution counts from a profiling run back
// into the benefit heuristic (the extension §III-C sketches).
type Profile = profile.Profile

// WithProfile weights the benefit heuristic by the given execution
// profile, so cold code contributes no benefit and cold collections
// are not enumerated.
func WithProfile(p Profile) Option {
	return func(c *config) { c.opts.Profile = p }
}

// CollectProfile executes entry and returns the per-instruction
// execution profile. Profiles are keyed stably, so a profile collected
// on one Compile of a source applies to another Compile of the same
// source.
func (p *Program) CollectProfile(entry string, args ...uint64) (Profile, error) {
	opts := interp.DefaultOptions()
	opts.CollectProfile = true
	ip := interp.New(p.IR, opts)
	vals := make([]interp.Val, len(args))
	for i, a := range args {
		vals[i] = interp.IntV(a)
	}
	if _, err := ip.Run(entry, vals...); err != nil {
		return nil, err
	}
	return ip.Profile(), nil
}

// Parse reads a textual MEMOIR program without transforming it.
func Parse(src string) (*Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	return &Program{IR: p}, nil
}

// Compile parses src and applies Automatic Data Enumeration.
func Compile(src string, options ...Option) (*Program, error) {
	cfg := &config{ade: true, opts: core.DefaultOptions()}
	for _, o := range options {
		o(cfg)
	}
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	prog.set, prog.mapI, prog.engine = cfg.set, cfg.mapI, cfg.engine
	if !cfg.ade {
		return prog, nil
	}
	rep, err := core.Apply(prog.IR, cfg.opts)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(prog.IR); err != nil {
		return nil, fmt.Errorf("verify after ADE: %w", err)
	}
	prog.Report = rep.String()
	return prog, nil
}

// Text renders the program in the paper's syntax.
func (p *Program) Text() string { return ir.Print(p.IR) }

// Result is one execution's outcome.
type Result struct {
	// Value is the entry function's u64 return value.
	Value uint64
	// Checksum and Outputs summarize the emitted output stream
	// (order-insensitive).
	Checksum uint64
	Outputs  uint64
	// Wall is the execution time; Sparse/Dense are the dynamic access
	// counts of Table II; Peak is the modeled peak resident size.
	Wall   time.Duration
	Sparse uint64
	Dense  uint64
	Peak   int64
}

// Run executes entry on the configured engine with optional u64
// arguments.
func (p *Program) Run(entry string, args ...uint64) (*Result, error) {
	opts := interp.DefaultOptions()
	if p.set != collections.ImplNone {
		opts.DefaultSet = p.set
	}
	if p.mapI != collections.ImplNone {
		opts.DefaultMap = p.mapI
	}
	vals := make([]interp.Val, len(args))
	for i, a := range args {
		vals[i] = interp.IntV(a)
	}
	var (
		run      func(string, ...interp.Val) (interp.Val, error)
		finalize func()
		stats    *interp.Stats
	)
	switch p.engine {
	case EngineVM:
		bc, err := bytecode.Compile(p.IR)
		if err != nil {
			return nil, err
		}
		m := vm.New(bc, opts)
		run, finalize, stats = m.Run, m.FinalizeMem, m.Stats
	default:
		ip := interp.New(p.IR, opts)
		run, finalize, stats = ip.Run, ip.FinalizeMem, ip.Stats
	}
	start := time.Now()
	ret, err := run(entry, vals...)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	finalize()
	return &Result{
		Value:    ret.I,
		Checksum: stats.EmitSum,
		Outputs:  stats.EmitCount,
		Wall:     wall,
		Sparse:   stats.Sparse,
		Dense:    stats.Dense,
		Peak:     stats.PeakBytes,
	}, nil
}
