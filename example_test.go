package memoir_test

import (
	"fmt"
	"strings"

	"memoir"
)

const dedupSrc = `
fn u64 @main(): exported
  %words := new Seq<str>()
  %w1 := insert(%words, end, "foo")
  %w2 := insert(%w1, end, "bar")
  %w3 := insert(%w2, end, "foo")
  %seen := new Set<str>()
  for [%i, %v] in %w3:
    %s0 := phi(%seen, %s2)
    %dup := has(%s0, %v)
    if %dup:
      %nop := add(0, 0)
    else:
      %s1 := insert(%s0, %v)
      emit(%v)
    %s2 := phi(%s0, %s1)
  %sF := phi(%s0)
  %n := size(%sF)
  ret %n
`

// Compile a program with ADE and run it: the set of seen strings
// becomes a bitset over interned identifiers, and the output is
// unchanged.
func ExampleCompile() {
	baseline, err := memoir.Compile(dedupSrc, memoir.WithoutADE())
	if err != nil {
		panic(err)
	}
	ade, err := memoir.Compile(dedupSrc)
	if err != nil {
		panic(err)
	}
	rb, _ := baseline.Run("main")
	ra, _ := ade.Run("main")
	fmt.Println("unique:", ra.Value)
	fmt.Println("outputs equal:", rb.Checksum == ra.Checksum)
	fmt.Println("set became:", strings.Contains(ade.Text(), "Set{BitSet}<idx>"))
	// Output:
	// unique: 2
	// outputs equal: true
	// set became: true
}

// Parse without transforming to inspect a program as written.
func ExampleParse() {
	prog, err := memoir.Parse(dedupSrc)
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.Contains(prog.Text(), "new Set<str>()"))
	// Output:
	// true
}
